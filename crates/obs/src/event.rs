//! The typed event taxonomy of the observability bus.
//!
//! Every record is stamped with [`SimTime`] (never a wall clock), the
//! [`NodeId`] it happened on, and a *track* — the Chrome-trace lane it is
//! drawn on. Thread-level events use the simulated thread id as their
//! track; NIC-level events (the `san`/`vmmc` layers run below the thread
//! abstraction) use [`NIC_TRACK`].

use std::fmt;

use sim::{NodeId, SimTime};

/// Track id used for events that belong to a node's NIC rather than to a
/// simulated thread (SAN sends/fetches, VMMC remote operations).
pub const NIC_TRACK: u64 = 1_000_000;

/// The runtime layer an event is attributed to.
///
/// Span durations are summed per `(node, layer)`; note that spans *include*
/// the time of nested lower-layer work they trigger (a protocol fault span
/// includes the VMMC fetch it performs, which includes the SAN time), so
/// layer sums are inclusive views, not a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// System-area network: message send/recv and wire occupancy.
    San,
    /// Virtual memory-mapped communication: remote write/fetch/notify,
    /// region registration.
    Vmmc,
    /// SVM protocol: faults, fetches, diffs, invalidations, migrations.
    Proto,
    /// System-level synchronization (SVM locks and native barriers).
    Sync,
    /// The CableS pthreads runtime: thread lifecycle, pthread-level
    /// waiting, GLOBAL allocation, node attach/detach.
    Rt,
    /// Engine scheduling points (spawn/exit/block/wake).
    Sched,
    /// Fault injection and recovery (the `chaos` subsystem): injected
    /// wire/resource/node faults and the recovery actions they trigger.
    Chaos,
    /// Request-serving applications (the KV service): whole-request
    /// lifecycle spans, enqueue to response. The *only* spans attributed
    /// here are [`Event::ServiceRequest`], so this layer's histogram is
    /// a pure request-latency distribution — p50/p95/p99 fall straight
    /// out of [`crate::MetricsSnapshot::hists`].
    Service,
}

impl Layer {
    /// Number of layers (array dimension for per-layer registries).
    pub const COUNT: usize = 8;

    /// All layers, in display order.
    pub const ALL: [Layer; Layer::COUNT] = [
        Layer::San,
        Layer::Vmmc,
        Layer::Proto,
        Layer::Sync,
        Layer::Rt,
        Layer::Sched,
        Layer::Chaos,
        Layer::Service,
    ];

    /// Dense index for per-layer arrays.
    pub const fn index(self) -> usize {
        match self {
            Layer::San => 0,
            Layer::Vmmc => 1,
            Layer::Proto => 2,
            Layer::Sync => 3,
            Layer::Rt => 4,
            Layer::Sched => 5,
            Layer::Chaos => 6,
            Layer::Service => 7,
        }
    }

    /// Lower-case display name (used in JSON and reports).
    pub const fn name(self) -> &'static str {
        match self {
            Layer::San => "san",
            Layer::Vmmc => "vmmc",
            Layer::Proto => "proto",
            Layer::Sync => "sync",
            Layer::Rt => "rt",
            Layer::Sched => "sched",
            Layer::Chaos => "chaos",
            Layer::Service => "service",
        }
    }
}

/// The kind of a causal [`Event::Edge`]: which cause→effect dependency
/// the edge records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// SAN message: send start → remote arrival (NIC lanes only; the
    /// critical-path walk never enters these, they are drawn as arrows).
    MsgSend,
    /// SAN fetch: remote serve start → data back at the requester.
    MsgFetch,
    /// SAN notification: send start → remote handler dispatch.
    MsgNotify,
    /// Mutex release → next holder's grant (cross-node lock handoff).
    LockHandoff,
    /// Barrier last arrival → one waiter's release (fan-out: one edge per
    /// released waiter).
    BarrierRelease,
    /// Condition signal/broadcast → one waiter's wakeup.
    CondSignal,
    /// Rwlock release → one woken reader/writer's grant.
    RwHandoff,
    /// Page fault → home fetch → reply → resume, collapsed onto the
    /// faulting thread's own lane (src = fetch issue, effect = data back).
    PageFetch,
    /// Thread create → the new thread's first run.
    ThreadStart,
    /// Thread exit → its joiner's resume.
    ThreadJoin,
    /// Batched multi-page fetch (demand page + prefetched run, or
    /// lock-forwarded contents) → data back at the requester, collapsed
    /// onto the requesting thread's own lane like [`EdgeKind::PageFetch`].
    BatchFetch,
    /// Batched release diff (all diffs bound for one home in one message)
    /// → the release fence observing its arrival, on the releaser's lane.
    BatchDiff,
    /// Generic scheduler wake: waker's wake call → wakee's resume
    /// (covers every block→wake the typed edges above don't).
    Wakeup,
    /// Fault → recovery completion: an injected fault (crash observed,
    /// fetch timeout, registration failure) to the action that restored
    /// progress (node detached, retry succeeded, region evicted).
    Recovery,
}

impl EdgeKind {
    /// Number of kinds (array dimension for breakdowns).
    pub const COUNT: usize = 14;

    /// All kinds, in display order.
    pub const ALL: [EdgeKind; EdgeKind::COUNT] = [
        EdgeKind::MsgSend,
        EdgeKind::MsgFetch,
        EdgeKind::MsgNotify,
        EdgeKind::LockHandoff,
        EdgeKind::BarrierRelease,
        EdgeKind::CondSignal,
        EdgeKind::RwHandoff,
        EdgeKind::PageFetch,
        EdgeKind::ThreadStart,
        EdgeKind::ThreadJoin,
        EdgeKind::BatchFetch,
        EdgeKind::BatchDiff,
        EdgeKind::Wakeup,
        EdgeKind::Recovery,
    ];

    /// The layer an edge of this kind is attributed to (message edges to
    /// the SAN, lock/barrier handoffs to Sync, pthread-level handoffs and
    /// thread lifecycle to Rt, page movement to Proto, generic scheduler
    /// wakes to Sched).
    pub const fn layer(self) -> Layer {
        match self {
            EdgeKind::MsgSend | EdgeKind::MsgFetch | EdgeKind::MsgNotify => Layer::San,
            EdgeKind::LockHandoff | EdgeKind::BarrierRelease => Layer::Sync,
            EdgeKind::CondSignal
            | EdgeKind::RwHandoff
            | EdgeKind::ThreadStart
            | EdgeKind::ThreadJoin => Layer::Rt,
            EdgeKind::PageFetch | EdgeKind::BatchFetch | EdgeKind::BatchDiff => Layer::Proto,
            EdgeKind::Wakeup => Layer::Sched,
            EdgeKind::Recovery => Layer::Chaos,
        }
    }

    /// Display name (last path segment of the dotted kind name).
    pub const fn name(self) -> &'static str {
        match self {
            EdgeKind::MsgSend => "msg_send",
            EdgeKind::MsgFetch => "msg_fetch",
            EdgeKind::MsgNotify => "msg_notify",
            EdgeKind::LockHandoff => "lock_handoff",
            EdgeKind::BarrierRelease => "barrier_release",
            EdgeKind::CondSignal => "cond_signal",
            EdgeKind::RwHandoff => "rw_handoff",
            EdgeKind::PageFetch => "page_fetch",
            EdgeKind::ThreadStart => "thread_start",
            EdgeKind::ThreadJoin => "thread_join",
            EdgeKind::BatchFetch => "batch_fetch",
            EdgeKind::BatchDiff => "batch_diff",
            EdgeKind::Wakeup => "wakeup",
            EdgeKind::Recovery => "recovery",
        }
    }
}

/// Engine scheduling-point kinds forwarded from `sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// A simulated thread was spawned.
    Spawn,
    /// A simulated thread exited.
    Exit,
    /// A thread parked itself.
    Block,
    /// A thread was woken by another thread.
    Wake,
}

impl SchedKind {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            SchedKind::Spawn => "spawn",
            SchedKind::Exit => "exit",
            SchedKind::Block => "block",
            SchedKind::Wake => "wake",
        }
    }
}

/// Operation kinds of the request-serving KV service layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceOp {
    /// Point read.
    Get,
    /// Point write (insert or overwrite).
    Put,
    /// Point delete.
    Delete,
    /// Short ordered range read over consecutive keys.
    Scan,
}

impl ServiceOp {
    /// Number of ops (array dimension for per-op breakdowns).
    pub const COUNT: usize = 4;

    /// All ops, in display order.
    pub const ALL: [ServiceOp; ServiceOp::COUNT] =
        [ServiceOp::Get, ServiceOp::Put, ServiceOp::Delete, ServiceOp::Scan];

    /// Display name (last path segment of the dotted kind name).
    pub const fn name(self) -> &'static str {
        match self {
            ServiceOp::Get => "get",
            ServiceOp::Put => "put",
            ServiceOp::Delete => "delete",
            ServiceOp::Scan => "scan",
        }
    }
}

/// A typed observability event.
///
/// The first six variants mirror the legacy `svm::TraceEvent` instants
/// one-for-one (the old bounded ring buffer is now routed through this
/// bus); the rest are spans and instants emitted by the other layers.
/// Addresses and pages are carried as raw `u64` so this crate depends on
/// nothing above `sim`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    // ---- SVM protocol instants (the legacy trace.rs taxonomy) ----
    /// A read or write fault on `page`.
    Fault {
        /// Faulting page index.
        page: u64,
        /// True for a write fault.
        write: bool,
    },
    /// First-touch placement of the chunk starting at page `base`.
    Place {
        /// First page index of the placed chunk.
        base: u64,
    },
    /// A page fetch from its home node.
    Fetch {
        /// Fetched page index.
        page: u64,
        /// Home node the page was fetched from.
        home: u32,
    },
    /// A diff of `bytes` bytes sent home at release.
    Diff {
        /// Diffed page index.
        page: u64,
        /// Bytes shipped.
        bytes: u64,
    },
    /// An acquire-time invalidation of `page`.
    Invalidate {
        /// Invalidated page index.
        page: u64,
    },
    /// Home migration of the chunk starting at page `base`.
    Migrate {
        /// First page index of the migrated chunk.
        base: u64,
    },

    // ---- SVM protocol-optimization instants (batched traffic) ----
    /// A batched release diff: all of one release's diffs bound for one
    /// home shipped as a single multi-segment message.
    DiffBatch {
        /// Home node the batch was shipped to.
        home: u32,
        /// Pages whose diffs rode in the batch.
        pages: u64,
        /// Payload bytes (after cross-page run merging).
        bytes: u64,
    },
    /// A confirmed-stride prefetch riding on a demand fetch: `pages`
    /// extra pages fetched from `home` in the same batched message.
    Prefetch {
        /// The demand page that triggered the batch.
        page: u64,
        /// Extra (prefetched) pages in the batch.
        pages: u64,
        /// Home node served the batch.
        home: u32,
    },
    /// Lock-data forwarding: hot pages refreshed from home on the lock
    /// grant instead of invalidated.
    LockForward {
        /// Pages refreshed.
        pages: u64,
        /// Payload bytes forwarded.
        bytes: u64,
    },
    /// A fault satisfied by an already-prefetched copy: no remote fetch,
    /// only the tail of the streaming install (if any) plus protection
    /// work. Emitted as a span nested inside the enclosing
    /// [`Event::FaultSpan`], so the stall profiler can split
    /// prefetch-masked stall from full page-fault stall.
    PrefetchMasked {
        /// The page the fault was masked on.
        page: u64,
    },

    // ---- SAN spans ----
    /// A message send (`dur` = send start to remote arrival).
    SanSend {
        /// Destination node.
        to: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A remote fetch round trip.
    SanFetch {
        /// Node fetched from.
        to: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A notification (interrupt-path message).
    SanNotify {
        /// Destination node.
        to: u32,
    },

    // ---- VMMC spans / instants ----
    /// A remote write into an imported region.
    VmmcWrite {
        /// Target region id.
        region: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// A remote fetch from an exported region.
    VmmcFetch {
        /// Source region id.
        region: u64,
        /// Bytes fetched.
        bytes: u64,
    },
    /// A VMMC notification.
    VmmcNotify {
        /// Destination node.
        to: u32,
    },
    /// Region registration (export) with the NIC.
    VmmcRegister {
        /// New region id.
        region: u64,
        /// Registered bytes.
        bytes: u64,
    },
    /// Importing a remote region.
    VmmcImport {
        /// Imported region id.
        region: u64,
    },

    // ---- SVM protocol spans ----
    /// Full fault-handling window (includes nested fetch/placement work).
    FaultSpan {
        /// Faulting page index.
        page: u64,
        /// True for a write fault.
        write: bool,
    },
    /// A release operation (diff creation + write notices + fence).
    ReleaseSpan {
        /// Number of pages diffed.
        diffs: u64,
    },
    /// An acquire operation (write-notice scan + invalidations).
    AcquireSpan {
        /// Number of pages invalidated.
        invals: u64,
    },

    // ---- System synchronization spans ----
    /// Acquiring an SVM system lock (request + wait + grant).
    LockWait {
        /// Lock id.
        id: u64,
    },
    /// One thread's wait at a native SVM barrier.
    BarrierWait {
        /// Barrier id.
        id: u64,
    },

    // ---- CableS runtime spans / instants ----
    /// A pthread mutex acquisition at the CableS layer.
    PthMutexWait {
        /// Mutex id.
        id: u64,
    },
    /// A pthread condition wait (block to wakeup).
    PthCondWait {
        /// Condition-variable id.
        id: u64,
    },
    /// A pthread barrier wait at the CableS layer.
    PthBarrierWait {
        /// Barrier id.
        id: u64,
    },
    /// A pthread rwlock acquisition.
    PthRwWait {
        /// Rwlock id.
        id: u64,
        /// True when acquiring for writing.
        write: bool,
    },
    /// `pthread_create` (span covers placement + dispatch bookkeeping).
    ThreadCreate {
        /// New CableS thread id.
        ct: u64,
        /// Node the thread was placed on.
        on: u32,
    },
    /// `pthread_join` (span covers the wait for the target's exit).
    ThreadJoin {
        /// Joined CableS thread id.
        ct: u64,
    },
    /// `global_malloc` of `bytes` at address `base`.
    GlobalAlloc {
        /// Allocated base address (raw `GAddr`).
        base: u64,
        /// Allocation size.
        bytes: u64,
    },
    /// A node attach (span covers the multi-second handshake).
    NodeAttach {
        /// Attached node.
        node: u32,
    },
    /// A node detach.
    NodeDetach {
        /// Detached node.
        node: u32,
    },

    // ---- Engine scheduling instants ----
    /// A scheduling point forwarded from the engine.
    Sched {
        /// Which scheduling point.
        kind: SchedKind,
    },

    // ---- Chaos (fault injection / recovery) instants and spans ----
    /// An injected wire fault on a SAN message (jitter, reorder delay,
    /// retransmissions after drops, duplicate deliveries).
    ChaosWireFault {
        /// Destination node of the faulted message.
        to: u32,
        /// Total extra latency injected, ns.
        delay_ns: u64,
        /// Retransmissions the reliable transport performed (drops).
        retransmits: u64,
        /// Duplicate deliveries (extra receive occupancy).
        duplicates: u64,
    },
    /// An injected transient NIC resource failure (region/registered/
    /// pinned exhaustion pressure in `vmmc`).
    ChaosResourceFault {
        /// The faulted VMMC operation ("export", "import", "extend").
        op: &'static str,
    },
    /// One bounded-backoff retry of a faulted operation (span covers the
    /// backoff window before the re-issue).
    ChaosRetry {
        /// 1-based retry attempt number.
        attempt: u64,
        /// Backoff charged before this re-issue, ns.
        backoff_ns: u64,
    },
    /// Eviction of an imported region to free NIC resources (the
    /// deregister-and-retry fallback of the paper's §3.4 regime).
    ChaosEvict {
        /// Evicted region id.
        region: u64,
    },
    /// A node crash taking effect (all its threads are about to be torn
    /// down and the node detached).
    ChaosCrash {
        /// Crashed node.
        node: u32,
    },
    /// Completed crash recovery: locks released, joiners woken, node
    /// detached.
    ChaosRecovery {
        /// Recovered (detached) node.
        node: u32,
        /// Threads torn down by the recovery.
        threads: u64,
        /// Crash-to-recovery latency, ns.
        latency_ns: u64,
    },

    // ---- Service (request-serving application) spans ----
    /// One whole service request, submission to response (open loop: the
    /// scheduled arrival instant; closed loop: the client's enqueue).
    /// The span is recorded on the *client/dispatcher* lane so queueing
    /// delay is inside it — this is end-to-end latency, not service
    /// time. The only span kind attributed to [`Layer::Service`].
    ServiceRequest {
        /// The operation performed.
        op: ServiceOp,
        /// Shard that served the request.
        shard: u32,
        /// Request key (scan: first key of the range).
        key: u64,
    },

    // ---- Causal edges ----
    /// A cause→effect dependency. The record's `at`/`node`/`track` are the
    /// *effect* endpoint; the payload carries the *source* endpoint. An
    /// edge is an instant (`dur_ns == 0`) — the dependency's latency is
    /// `at - src_ns`, reconstructed by `critpath`.
    Edge {
        /// Which dependency this edge records.
        kind: EdgeKind,
        /// Node the cause happened on.
        src_node: u32,
        /// Track (thread id or [`NIC_TRACK`]) the cause happened on.
        src_track: u64,
        /// SimTime of the cause, in nanoseconds.
        src_ns: u64,
        /// The object the edge is about: page index, lock/barrier/cond/
        /// rwlock id, CableS thread id, or message bytes — keyed by `kind`.
        obj: u64,
    },
}

impl Event {
    /// True for the six legacy protocol instants that the deprecated
    /// `svm::trace` ring buffer recorded; `take_trace` drains exactly
    /// these.
    pub const fn is_proto_instant(&self) -> bool {
        matches!(
            self,
            Event::Fault { .. }
                | Event::Place { .. }
                | Event::Fetch { .. }
                | Event::Diff { .. }
                | Event::Invalidate { .. }
                | Event::Migrate { .. }
        )
    }

    /// Stable dotted kind name (`layer.kind`), used for aggregate keys,
    /// Chrome-trace event names and the paper-table reporter.
    pub const fn kind_name(&self) -> &'static str {
        match self {
            Event::Fault { .. } => "proto.fault",
            Event::Place { .. } => "proto.place",
            Event::Fetch { .. } => "proto.fetch",
            Event::Diff { .. } => "proto.diff",
            Event::Invalidate { .. } => "proto.inval",
            Event::Migrate { .. } => "proto.migrate",
            Event::DiffBatch { .. } => "proto.diff_batch",
            Event::Prefetch { .. } => "proto.prefetch",
            Event::LockForward { .. } => "proto.lock_forward",
            Event::PrefetchMasked { .. } => "proto.prefetch_masked",
            Event::SanSend { .. } => "san.send",
            Event::SanFetch { .. } => "san.fetch",
            Event::SanNotify { .. } => "san.notify",
            Event::VmmcWrite { .. } => "vmmc.write",
            Event::VmmcFetch { .. } => "vmmc.fetch",
            Event::VmmcNotify { .. } => "vmmc.notify",
            Event::VmmcRegister { .. } => "vmmc.register",
            Event::VmmcImport { .. } => "vmmc.import",
            Event::FaultSpan { .. } => "proto.fault_handling",
            Event::ReleaseSpan { .. } => "proto.release",
            Event::AcquireSpan { .. } => "proto.acquire",
            Event::LockWait { .. } => "sync.lock",
            Event::BarrierWait { .. } => "sync.barrier",
            Event::PthMutexWait { .. } => "rt.mutex_wait",
            Event::PthCondWait { .. } => "rt.cond_wait",
            Event::PthBarrierWait { .. } => "rt.barrier_wait",
            Event::PthRwWait { .. } => "rt.rwlock_wait",
            Event::ThreadCreate { .. } => "rt.thread_create",
            Event::ThreadJoin { .. } => "rt.thread_join",
            Event::GlobalAlloc { .. } => "rt.global_alloc",
            Event::NodeAttach { .. } => "rt.node_attach",
            Event::NodeDetach { .. } => "rt.node_detach",
            Event::Sched { kind: SchedKind::Spawn } => "sched.spawn",
            Event::Sched { kind: SchedKind::Exit } => "sched.exit",
            Event::Sched { kind: SchedKind::Block } => "sched.block",
            Event::Sched { kind: SchedKind::Wake } => "sched.wake",
            Event::ChaosWireFault { .. } => "chaos.wire_fault",
            Event::ChaosResourceFault { .. } => "chaos.resource_fault",
            Event::ChaosRetry { .. } => "chaos.retry",
            Event::ChaosEvict { .. } => "chaos.evict",
            Event::ChaosCrash { .. } => "chaos.crash",
            Event::ChaosRecovery { .. } => "chaos.recovery",
            Event::ServiceRequest { op: ServiceOp::Get, .. } => "service.request.get",
            Event::ServiceRequest { op: ServiceOp::Put, .. } => "service.request.put",
            Event::ServiceRequest { op: ServiceOp::Delete, .. } => "service.request.delete",
            Event::ServiceRequest { op: ServiceOp::Scan, .. } => "service.request.scan",
            Event::Edge { kind: EdgeKind::MsgSend, .. } => "edge.msg_send",
            Event::Edge { kind: EdgeKind::MsgFetch, .. } => "edge.msg_fetch",
            Event::Edge { kind: EdgeKind::MsgNotify, .. } => "edge.msg_notify",
            Event::Edge { kind: EdgeKind::LockHandoff, .. } => "edge.lock_handoff",
            Event::Edge { kind: EdgeKind::BarrierRelease, .. } => "edge.barrier_release",
            Event::Edge { kind: EdgeKind::CondSignal, .. } => "edge.cond_signal",
            Event::Edge { kind: EdgeKind::RwHandoff, .. } => "edge.rw_handoff",
            Event::Edge { kind: EdgeKind::PageFetch, .. } => "edge.page_fetch",
            Event::Edge { kind: EdgeKind::ThreadStart, .. } => "edge.thread_start",
            Event::Edge { kind: EdgeKind::ThreadJoin, .. } => "edge.thread_join",
            Event::Edge { kind: EdgeKind::BatchFetch, .. } => "edge.batch_fetch",
            Event::Edge { kind: EdgeKind::BatchDiff, .. } => "edge.batch_diff",
            Event::Edge { kind: EdgeKind::Wakeup, .. } => "edge.wakeup",
            Event::Edge { kind: EdgeKind::Recovery, .. } => "edge.recovery",
        }
    }

    /// True for causal [`Event::Edge`] records.
    pub const fn is_edge(&self) -> bool {
        matches!(self, Event::Edge { .. })
    }

    /// Writes the Chrome-trace `args` object body (without braces) for
    /// this event. Deterministic: fixed field order, integers only.
    pub fn write_args(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Event::Fault { page, write } | Event::FaultSpan { page, write } => {
                let _ = write!(out, "\"page\":{page},\"write\":{write}");
            }
            Event::Place { base } | Event::Migrate { base } => {
                let _ = write!(out, "\"base\":{base}");
            }
            Event::Fetch { page, home } => {
                let _ = write!(out, "\"page\":{page},\"home\":{home}");
            }
            Event::Diff { page, bytes } => {
                let _ = write!(out, "\"page\":{page},\"bytes\":{bytes}");
            }
            Event::Invalidate { page } | Event::PrefetchMasked { page } => {
                let _ = write!(out, "\"page\":{page}");
            }
            Event::DiffBatch { home, pages, bytes } => {
                let _ = write!(out, "\"home\":{home},\"pages\":{pages},\"bytes\":{bytes}");
            }
            Event::Prefetch { page, pages, home } => {
                let _ = write!(out, "\"page\":{page},\"pages\":{pages},\"home\":{home}");
            }
            Event::LockForward { pages, bytes } => {
                let _ = write!(out, "\"pages\":{pages},\"bytes\":{bytes}");
            }
            Event::SanSend { to, bytes } | Event::SanFetch { to, bytes } => {
                let _ = write!(out, "\"to\":{to},\"bytes\":{bytes}");
            }
            Event::SanNotify { to } | Event::VmmcNotify { to } => {
                let _ = write!(out, "\"to\":{to}");
            }
            Event::VmmcWrite { region, bytes }
            | Event::VmmcFetch { region, bytes }
            | Event::VmmcRegister { region, bytes } => {
                let _ = write!(out, "\"region\":{region},\"bytes\":{bytes}");
            }
            Event::VmmcImport { region } => {
                let _ = write!(out, "\"region\":{region}");
            }
            Event::ReleaseSpan { diffs } => {
                let _ = write!(out, "\"diffs\":{diffs}");
            }
            Event::AcquireSpan { invals } => {
                let _ = write!(out, "\"invals\":{invals}");
            }
            Event::LockWait { id }
            | Event::BarrierWait { id }
            | Event::PthMutexWait { id }
            | Event::PthCondWait { id }
            | Event::PthBarrierWait { id } => {
                let _ = write!(out, "\"id\":{id}");
            }
            Event::PthRwWait { id, write } => {
                let _ = write!(out, "\"id\":{id},\"write\":{write}");
            }
            Event::ThreadCreate { ct, on } => {
                let _ = write!(out, "\"ct\":{ct},\"on\":{on}");
            }
            Event::ThreadJoin { ct } => {
                let _ = write!(out, "\"ct\":{ct}");
            }
            Event::GlobalAlloc { base, bytes } => {
                let _ = write!(out, "\"base\":{base},\"bytes\":{bytes}");
            }
            Event::NodeAttach { node } | Event::NodeDetach { node } => {
                let _ = write!(out, "\"node\":{node}");
            }
            Event::Sched { kind } => {
                let _ = write!(out, "\"kind\":\"{}\"", kind.name());
            }
            Event::ChaosWireFault {
                to,
                delay_ns,
                retransmits,
                duplicates,
            } => {
                let _ = write!(
                    out,
                    "\"to\":{to},\"delay_ns\":{delay_ns},\"retransmits\":{retransmits},\"duplicates\":{duplicates}"
                );
            }
            Event::ChaosResourceFault { op } => {
                let _ = write!(out, "\"op\":\"{op}\"");
            }
            Event::ChaosRetry { attempt, backoff_ns } => {
                let _ = write!(out, "\"attempt\":{attempt},\"backoff_ns\":{backoff_ns}");
            }
            Event::ChaosEvict { region } => {
                let _ = write!(out, "\"region\":{region}");
            }
            Event::ChaosCrash { node } => {
                let _ = write!(out, "\"node\":{node}");
            }
            Event::ServiceRequest { op, shard, key } => {
                let _ = write!(out, "\"op\":\"{}\",\"shard\":{shard},\"key\":{key}", op.name());
            }
            Event::ChaosRecovery {
                node,
                threads,
                latency_ns,
            } => {
                let _ = write!(
                    out,
                    "\"node\":{node},\"threads\":{threads},\"latency_ns\":{latency_ns}"
                );
            }
            Event::Edge {
                src_node,
                src_track,
                src_ns,
                obj,
                ..
            } => {
                let _ = write!(
                    out,
                    "\"src_node\":{src_node},\"src_track\":{src_track},\"src_ns\":{src_ns},\"obj\":{obj}"
                );
            }
        }
    }
}

/// One recorded event: an instant (`dur_ns == 0`) or a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Start time (for spans) or occurrence time (for instants).
    pub at: SimTime,
    /// Span duration in simulated nanoseconds; `0` marks an instant.
    pub dur_ns: u64,
    /// Node the event is attributed to.
    pub node: NodeId,
    /// Chrome-trace lane: a simulated thread id, or [`NIC_TRACK`].
    pub track: u64,
    /// Layer the event is attributed to.
    pub layer: Layer,
    /// The event payload.
    pub event: Event,
}

impl EventRecord {
    /// A total, mode-independent ordering key: `(at, node, track, layer,
    /// kind, dur)`. Recording order is already identical across engine
    /// backends (every backend executes operations in the same global
    /// timestamp order), so sorting by this key is defense in depth for
    /// cross-backend comparisons — any reordering of same-instant records
    /// normalizes away, while a genuine divergence still differs.
    pub fn canonical_key(&self) -> (u64, u32, u64, usize, &'static str, u64) {
        (
            self.at.as_nanos(),
            self.node.0,
            self.track,
            self.layer.index(),
            self.event.kind_name(),
            self.dur_ns,
        )
    }
}

/// Sorts `events` into the canonical cross-backend comparison order (see
/// [`EventRecord::canonical_key`]). Stable, so records identical under the
/// key keep their recording order.
pub fn canonical_sort(events: &mut [EventRecord]) {
    events.sort_by(|a, b| a.canonical_key().cmp(&b.canonical_key()));
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.at,
            self.node,
            self.event.kind_name(),
            self.dur_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_indices_are_dense_and_stable() {
        for (i, l) in Layer::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn proto_instants_are_exactly_the_legacy_six() {
        assert!(Event::Fault { page: 0, write: false }.is_proto_instant());
        assert!(Event::Migrate { base: 0 }.is_proto_instant());
        assert!(!Event::FaultSpan { page: 0, write: false }.is_proto_instant());
        assert!(!Event::SanSend { to: 0, bytes: 4 }.is_proto_instant());
    }

    #[test]
    fn kind_names_carry_their_layer() {
        assert_eq!(Event::SanSend { to: 1, bytes: 4 }.kind_name(), "san.send");
        assert_eq!(
            Event::Sched { kind: SchedKind::Wake }.kind_name(),
            "sched.wake"
        );
    }
}
