//! Page-sharing and contention analyzer.
//!
//! [`analyze`] folds the per-page metric registry and the causal edges
//! into a sharing report: pages ranked by how many distinct nodes touch
//! them, how much fetch/diff traffic they generate, and how often they
//! ping-pong between nodes (consecutive faults from different nodes — the
//! false-sharing smell the paper's §6 layout discussion is about).
//!
//! The analysis is incremental: an [`Accumulator`] ingests event records
//! one at a time ([`Accumulator::feed`]) and can rank the hottest pages
//! at any point ([`Accumulator::top`]) — the shape a live policy loop
//! needs. [`analyze`] is the post-hoc wrapper: it folds the whole event
//! buffer through an accumulator and then overlays the registry's page
//! counts (authoritative even when event *records* were dropped on
//! buffer overflow, since metrics aggregate everything).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EdgeKind, Event, EventRecord};
use crate::metrics::MetricsSnapshot;

/// Sharing profile of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSharing {
    /// Page index.
    pub page: u64,
    /// Distinct nodes that faulted on the page (capped at 64).
    pub sharers: u32,
    /// Read + write faults.
    pub faults: u64,
    /// Fetches from home.
    pub fetches: u64,
    /// Diffs sent home.
    pub diffs: u64,
    /// Total diffed bytes shipped home.
    pub diff_bytes: u64,
    /// Acquire-time invalidations.
    pub invals: u64,
    /// Ping-pong handoffs (consecutive faults from different nodes).
    pub handoffs: u64,
    /// Simulated time threads spent waiting on fetches of this page
    /// (summed over the page-fetch causal edges).
    pub fetch_wait_ns: u64,
}

impl PageSharing {
    /// Traffic score used for ranking (fetches + diffs + invals).
    pub fn traffic(&self) -> u64 {
        self.fetches + self.diffs + self.invals
    }
}

/// The sharing report: pages ranked most-shared first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingReport {
    /// Per-page rows, sorted by (sharers desc, traffic desc, page asc).
    pub pages: Vec<PageSharing>,
    /// Total diffed bytes across all pages.
    pub total_diff_bytes: u64,
    /// Total fetch wait time across all pages, ns.
    pub total_fetch_wait_ns: u64,
}

/// Incrementally maintained sharing profile — the same taxonomy
/// [`analyze`] reports, built one event at a time so a policy loop (or a
/// live viewer) can rank the hottest pages mid-run without replaying the
/// buffer.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    rows: BTreeMap<u64, AccRow>,
    /// Last node to fault on each page (ping-pong handoff detection,
    /// mirroring the registry's `page_last`).
    last_fault: BTreeMap<u64, u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct AccRow {
    nodes_mask: u64,
    faults: u64,
    fetches: u64,
    diffs: u64,
    diff_bytes: u64,
    invals: u64,
    handoffs: u64,
    fetch_wait_ns: u64,
}

impl AccRow {
    fn to_sharing(self, page: u64) -> PageSharing {
        PageSharing {
            page,
            sharers: self.nodes_mask.count_ones(),
            faults: self.faults,
            fetches: self.fetches,
            diffs: self.diffs,
            diff_bytes: self.diff_bytes,
            invals: self.invals,
            handoffs: self.handoffs,
            fetch_wait_ns: self.fetch_wait_ns,
        }
    }
}

fn rank(pages: &mut Vec<PageSharing>) {
    pages.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.sharers),
            std::cmp::Reverse(p.traffic()),
            p.page,
        )
    });
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Ingests one event record. Faults update sharer masks and handoff
    /// streaks; fetch/diff/invalidate events update traffic counts; diff
    /// events add byte volume; page-fetch causal edges add fetch wait.
    /// All other events are ignored.
    pub fn feed(&mut self, rec: &EventRecord) {
        match rec.event {
            Event::Fault { page, .. } => {
                let row = self.rows.entry(page).or_default();
                row.faults += 1;
                row.nodes_mask |= 1 << rec.node.0.min(63);
                match self.last_fault.insert(page, rec.node.0) {
                    Some(prev) if prev != rec.node.0 => {
                        self.rows.entry(page).or_default().handoffs += 1;
                    }
                    _ => {}
                }
            }
            Event::Fetch { page, .. } => self.rows.entry(page).or_default().fetches += 1,
            Event::Diff { page, bytes } => {
                let row = self.rows.entry(page).or_default();
                row.diffs += 1;
                row.diff_bytes += bytes;
            }
            Event::Invalidate { page } => self.rows.entry(page).or_default().invals += 1,
            Event::Edge {
                kind: EdgeKind::PageFetch,
                src_ns,
                obj,
                ..
            } => {
                self.rows.entry(obj).or_default().fetch_wait_ns +=
                    rec.at.as_nanos().saturating_sub(src_ns);
            }
            _ => {}
        }
    }

    /// Number of pages with any recorded activity so far.
    pub fn pages_seen(&self) -> usize {
        self.rows.len()
    }

    /// The `k` hottest pages right now, ranked like the report (sharers
    /// desc, traffic desc, page asc).
    pub fn top(&self, k: usize) -> Vec<PageSharing> {
        let mut pages: Vec<PageSharing> =
            self.rows.iter().map(|(&p, r)| r.to_sharing(p)).collect();
        rank(&mut pages);
        pages.truncate(k);
        pages
    }

    /// The full report from the accumulated events alone (exact when no
    /// event records were dropped; [`analyze`] overlays registry counts
    /// to stay exact even under drop).
    pub fn report(&self) -> SharingReport {
        let mut pages: Vec<PageSharing> =
            self.rows.iter().map(|(&p, r)| r.to_sharing(p)).collect();
        rank(&mut pages);
        let total_diff_bytes = pages.iter().map(|p| p.diff_bytes).sum();
        let total_fetch_wait_ns = pages.iter().map(|p| p.fetch_wait_ns).sum();
        SharingReport {
            pages,
            total_diff_bytes,
            total_fetch_wait_ns,
        }
    }
}

/// Builds the sharing report from a metric snapshot plus the event buffer:
/// a fold of the events through an [`Accumulator`], with counts and
/// sharer masks taken from the snapshot (whose aggregation never drops)
/// and byte volumes / fetch waits from the accumulated events.
pub fn analyze(snapshot: &MetricsSnapshot, events: &[EventRecord]) -> SharingReport {
    let mut acc = Accumulator::new();
    for e in events {
        acc.feed(e);
    }
    let mut pages: Vec<PageSharing> = snapshot
        .pages
        .iter()
        .map(|p| {
            let row = acc.rows.get(&p.page).copied().unwrap_or_default();
            PageSharing {
                page: p.page,
                sharers: p.sharers(),
                faults: p.faults,
                fetches: p.fetches,
                diffs: p.diffs,
                diff_bytes: row.diff_bytes,
                invals: p.invals,
                handoffs: p.handoffs,
                fetch_wait_ns: row.fetch_wait_ns,
            }
        })
        .collect();
    rank(&mut pages);
    let total_diff_bytes = pages.iter().map(|p| p.diff_bytes).sum();
    let total_fetch_wait_ns = pages.iter().map(|p| p.fetch_wait_ns).sum();
    SharingReport {
        pages,
        total_diff_bytes,
        total_fetch_wait_ns,
    }
}

impl SharingReport {
    /// A copy keeping only the `top` most-shared pages; the totals still
    /// cover every page (the `BENCH_obs_*.json` embedding — full page
    /// lists belong in the snapshot, not the ranking).
    pub fn top(&self, top: usize) -> SharingReport {
        SharingReport {
            pages: self.pages.iter().take(top).copied().collect(),
            total_diff_bytes: self.total_diff_bytes,
            total_fetch_wait_ns: self.total_fetch_wait_ns,
        }
    }

    /// Renders the sharing table, at most `top` rows.
    pub fn render(&self, title: &str, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {title}: page sharing (most shared first) ===");
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>12}",
            "page", "sharers", "faults", "fetches", "diffs", "diff_B", "handoffs", "fetch_wait"
        );
        let _ = writeln!(out, "{}", "-".repeat(80));
        for p in self.pages.iter().take(top) {
            let _ = writeln!(
                out,
                "p{:<9} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>10}ns",
                p.page,
                p.sharers,
                p.faults,
                p.fetches,
                p.diffs,
                p.diff_bytes,
                p.handoffs,
                p.fetch_wait_ns
            );
        }
        let _ = writeln!(
            out,
            "total: {} diffed bytes, {}ns fetch wait across {} pages",
            self.total_diff_bytes,
            self.total_fetch_wait_ns,
            self.pages.len()
        );
        out
    }

    /// Serializes the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(512);
        let _ = write!(
            j,
            "{{\n  \"total_diff_bytes\": {},\n  \"total_fetch_wait_ns\": {},\n  \"pages\": [",
            self.total_diff_bytes, self.total_fetch_wait_ns
        );
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"page\": {}, \"sharers\": {}, \"faults\": {}, \"fetches\": {}, \"diffs\": {}, \"diff_bytes\": {}, \"invals\": {}, \"handoffs\": {}, \"fetch_wait_ns\": {}}}",
                p.page,
                p.sharers,
                p.faults,
                p.fetches,
                p.diffs,
                p.diff_bytes,
                p.invals,
                p.handoffs,
                p.fetch_wait_ns
            );
        }
        j.push_str("\n  ]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Layer};
    use crate::ObsSink;
    use sim::{NodeId, SimTime};

    fn fault(sink: &ObsSink, at: u64, node: u32, page: u64) {
        sink.instant(
            Layer::Proto,
            NodeId(node),
            1,
            SimTime::from_nanos(at),
            Event::Fault { page, write: true },
        );
    }

    #[test]
    fn sharing_ranks_by_sharers_then_traffic() {
        let sink = ObsSink::new();
        sink.set_enabled(true);
        // Page 5 ping-pongs between nodes 0 and 1; page 8 stays on node 0.
        fault(&sink, 10, 0, 5);
        fault(&sink, 20, 1, 5);
        fault(&sink, 30, 0, 5);
        fault(&sink, 40, 0, 8);
        sink.instant(
            Layer::Proto,
            NodeId(1),
            1,
            SimTime::from_nanos(25),
            Event::Diff { page: 5, bytes: 128 },
        );
        sink.edge(
            EdgeKind::PageFetch,
            NodeId(0),
            1,
            SimTime::from_nanos(10),
            NodeId(0),
            1,
            SimTime::from_nanos(32),
            5,
        );
        let rep = analyze(&sink.snapshot(), &sink.events());
        assert_eq!(rep.pages[0].page, 5);
        assert_eq!(rep.pages[0].sharers, 2);
        assert_eq!(rep.pages[0].handoffs, 2);
        assert_eq!(rep.pages[0].diff_bytes, 128);
        assert_eq!(rep.pages[0].fetch_wait_ns, 22);
        assert_eq!(rep.pages[1].page, 8);
        assert_eq!(rep.pages[1].sharers, 1);
        assert_eq!(rep.total_diff_bytes, 128);
        let json = rep.to_json();
        crate::json::validate(&json).expect("sharing JSON parses");
        assert!(rep.render("T", 10).contains("p5"));

        // The incremental fold agrees with the post-hoc analysis when no
        // event records were dropped.
        let mut acc = Accumulator::new();
        for e in sink.events() {
            acc.feed(&e);
        }
        assert_eq!(acc.report(), rep);
        assert_eq!(acc.top(1), rep.pages[..1].to_vec());
    }

    #[test]
    fn accumulator_ranks_mid_stream() {
        let sink = ObsSink::new();
        sink.set_enabled(true);
        let mut acc = Accumulator::new();
        fault(&sink, 10, 0, 3);
        fault(&sink, 20, 1, 3);
        for e in sink.take_events() {
            acc.feed(&e);
        }
        assert_eq!(acc.pages_seen(), 1);
        assert_eq!(acc.top(5)[0].page, 3);
        assert_eq!(acc.top(5)[0].sharers, 2);
        assert_eq!(acc.top(5)[0].handoffs, 1);
        // Later events shift the ranking: page 9 gains a third sharer.
        for (at, node) in [(30, 0), (40, 1), (50, 2)] {
            fault(&sink, at, node, 9);
        }
        for e in sink.take_events() {
            acc.feed(&e);
        }
        let top = acc.top(5);
        assert_eq!(top[0].page, 9);
        assert_eq!(top[0].sharers, 3);
        assert_eq!(top[1].page, 3);
    }
}
