//! Page-sharing and contention analyzer.
//!
//! [`analyze`] folds the per-page metric registry and the causal edges
//! into a sharing report: pages ranked by how many distinct nodes touch
//! them, how much fetch/diff traffic they generate, and how often they
//! ping-pong between nodes (consecutive faults from different nodes — the
//! false-sharing smell the paper's §6 layout discussion is about).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EdgeKind, Event, EventRecord};
use crate::metrics::MetricsSnapshot;

/// Sharing profile of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSharing {
    /// Page index.
    pub page: u64,
    /// Distinct nodes that faulted on the page (capped at 64).
    pub sharers: u32,
    /// Read + write faults.
    pub faults: u64,
    /// Fetches from home.
    pub fetches: u64,
    /// Diffs sent home.
    pub diffs: u64,
    /// Total diffed bytes shipped home.
    pub diff_bytes: u64,
    /// Acquire-time invalidations.
    pub invals: u64,
    /// Ping-pong handoffs (consecutive faults from different nodes).
    pub handoffs: u64,
    /// Simulated time threads spent waiting on fetches of this page
    /// (summed over the page-fetch causal edges).
    pub fetch_wait_ns: u64,
}

impl PageSharing {
    /// Traffic score used for ranking (fetches + diffs + invals).
    pub fn traffic(&self) -> u64 {
        self.fetches + self.diffs + self.invals
    }
}

/// The sharing report: pages ranked most-shared first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingReport {
    /// Per-page rows, sorted by (sharers desc, traffic desc, page asc).
    pub pages: Vec<PageSharing>,
    /// Total diffed bytes across all pages.
    pub total_diff_bytes: u64,
    /// Total fetch wait time across all pages, ns.
    pub total_fetch_wait_ns: u64,
}

/// Builds the sharing report from a metric snapshot plus the event buffer
/// (the snapshot carries counts and sharer masks; the events contribute
/// diff byte volumes and per-page fetch wait time).
pub fn analyze(snapshot: &MetricsSnapshot, events: &[EventRecord]) -> SharingReport {
    let mut diff_bytes: BTreeMap<u64, u64> = BTreeMap::new();
    let mut fetch_wait: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        match e.event {
            Event::Diff { page, bytes } => *diff_bytes.entry(page).or_default() += bytes,
            Event::Edge {
                kind: EdgeKind::PageFetch,
                src_ns,
                obj,
                ..
            } => {
                *fetch_wait.entry(obj).or_default() +=
                    e.at.as_nanos().saturating_sub(src_ns);
            }
            _ => {}
        }
    }
    let mut pages: Vec<PageSharing> = snapshot
        .pages
        .iter()
        .map(|p| PageSharing {
            page: p.page,
            sharers: p.sharers(),
            faults: p.faults,
            fetches: p.fetches,
            diffs: p.diffs,
            diff_bytes: diff_bytes.get(&p.page).copied().unwrap_or(0),
            invals: p.invals,
            handoffs: p.handoffs,
            fetch_wait_ns: fetch_wait.get(&p.page).copied().unwrap_or(0),
        })
        .collect();
    pages.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.sharers),
            std::cmp::Reverse(p.traffic()),
            p.page,
        )
    });
    let total_diff_bytes = pages.iter().map(|p| p.diff_bytes).sum();
    let total_fetch_wait_ns = pages.iter().map(|p| p.fetch_wait_ns).sum();
    SharingReport {
        pages,
        total_diff_bytes,
        total_fetch_wait_ns,
    }
}

impl SharingReport {
    /// A copy keeping only the `top` most-shared pages; the totals still
    /// cover every page (the `BENCH_obs_*.json` embedding — full page
    /// lists belong in the snapshot, not the ranking).
    pub fn top(&self, top: usize) -> SharingReport {
        SharingReport {
            pages: self.pages.iter().take(top).copied().collect(),
            total_diff_bytes: self.total_diff_bytes,
            total_fetch_wait_ns: self.total_fetch_wait_ns,
        }
    }

    /// Renders the sharing table, at most `top` rows.
    pub fn render(&self, title: &str, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {title}: page sharing (most shared first) ===");
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>12}",
            "page", "sharers", "faults", "fetches", "diffs", "diff_B", "handoffs", "fetch_wait"
        );
        let _ = writeln!(out, "{}", "-".repeat(80));
        for p in self.pages.iter().take(top) {
            let _ = writeln!(
                out,
                "p{:<9} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>10}ns",
                p.page,
                p.sharers,
                p.faults,
                p.fetches,
                p.diffs,
                p.diff_bytes,
                p.handoffs,
                p.fetch_wait_ns
            );
        }
        let _ = writeln!(
            out,
            "total: {} diffed bytes, {}ns fetch wait across {} pages",
            self.total_diff_bytes,
            self.total_fetch_wait_ns,
            self.pages.len()
        );
        out
    }

    /// Serializes the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(512);
        let _ = write!(
            j,
            "{{\n  \"total_diff_bytes\": {},\n  \"total_fetch_wait_ns\": {},\n  \"pages\": [",
            self.total_diff_bytes, self.total_fetch_wait_ns
        );
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"page\": {}, \"sharers\": {}, \"faults\": {}, \"fetches\": {}, \"diffs\": {}, \"diff_bytes\": {}, \"invals\": {}, \"handoffs\": {}, \"fetch_wait_ns\": {}}}",
                p.page,
                p.sharers,
                p.faults,
                p.fetches,
                p.diffs,
                p.diff_bytes,
                p.invals,
                p.handoffs,
                p.fetch_wait_ns
            );
        }
        j.push_str("\n  ]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Layer};
    use crate::ObsSink;
    use sim::{NodeId, SimTime};

    fn fault(sink: &ObsSink, at: u64, node: u32, page: u64) {
        sink.instant(
            Layer::Proto,
            NodeId(node),
            1,
            SimTime::from_nanos(at),
            Event::Fault { page, write: true },
        );
    }

    #[test]
    fn sharing_ranks_by_sharers_then_traffic() {
        let sink = ObsSink::new();
        sink.set_enabled(true);
        // Page 5 ping-pongs between nodes 0 and 1; page 8 stays on node 0.
        fault(&sink, 10, 0, 5);
        fault(&sink, 20, 1, 5);
        fault(&sink, 30, 0, 5);
        fault(&sink, 40, 0, 8);
        sink.instant(
            Layer::Proto,
            NodeId(1),
            1,
            SimTime::from_nanos(25),
            Event::Diff { page: 5, bytes: 128 },
        );
        sink.edge(
            EdgeKind::PageFetch,
            NodeId(0),
            1,
            SimTime::from_nanos(10),
            NodeId(0),
            1,
            SimTime::from_nanos(32),
            5,
        );
        let rep = analyze(&sink.snapshot(), &sink.events());
        assert_eq!(rep.pages[0].page, 5);
        assert_eq!(rep.pages[0].sharers, 2);
        assert_eq!(rep.pages[0].handoffs, 2);
        assert_eq!(rep.pages[0].diff_bytes, 128);
        assert_eq!(rep.pages[0].fetch_wait_ns, 22);
        assert_eq!(rep.pages[1].page, 8);
        assert_eq!(rep.pages[1].sharers, 1);
        assert_eq!(rep.total_diff_bytes, 128);
        let json = rep.to_json();
        crate::json::validate(&json).expect("sharing JSON parses");
        assert!(rep.render("T", 10).contains("p5"));
    }
}
