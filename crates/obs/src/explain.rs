//! Regression root-cause attribution: from "what regressed" to "why".
//!
//! [`explain`] takes the same two artifact trees a failing
//! [`crate::diff`] gate saw and joins every regressed headline metric
//! against the *explanatory* rows of the same diff:
//!
//! - **stall buckets** — `stall.totals.<bucket>` deltas say where the
//!   extra simulated time was spent (the nine-bucket lifetime partition
//!   of [`crate::stall`]);
//! - **critical path** — `critpath.by_kind`/`by_layer`/`blame` deltas
//!   say whether the regression sits on the critical path at all;
//! - **kind latencies** — `kinds[name=…].total_ns` deltas name the
//!   protocol/runtime operation that grew;
//! - **pages** — `pages[page=…]` deltas point at the page whose protocol
//!   traffic moved;
//! - **time windows** — when both sides carry an NDJSON series
//!   ([`crate::stream`]), the per-window stall mixes are compared and
//!   the first diverging window (and the bucket that diverged) is
//!   reported, turning "it got slower" into "it got slower *here*".
//!
//! Causes are ranked per finding by path affinity (shared path prefix —
//! a `kernels[kernel=FFT]` regression prefers FFT-scoped causes), then
//! category, then magnitude; ns-valued causes carry a share of the
//! finding's delta. The ranked report is what `scripts/perfgate.sh`
//! prints automatically when the gate fails, and its selftest asserts an
//! injected stall regression is attributed to the right bucket.

use std::fmt::Write as _;

use crate::diff::{diff, DeltaRow, Diff, Thresholds};
use crate::json::Value;
use crate::stall::{Bucket, BUCKETS};
use crate::stream::Stream;

/// What kind of explanatory signal a cause is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CauseKind {
    /// A stall-bucket total moved (`stall.totals.*`).
    Stall,
    /// A critical-path blame entry moved (`critpath.*`, `blame`).
    Critpath,
    /// A per-kind latency aggregate moved (`kinds[name=…]`).
    Kind,
    /// A page's protocol counters moved (`pages[page=…]`).
    Page,
    /// A placement/migration gauge moved (`gauges.proto.migrations`,
    /// `gauges.proto.policy_*`, `gauges.proto.*pingpong*`): the
    /// migration policy was active and its decision rate changed — a
    /// regression may be home-thrash rather than app behavior.
    Migration,
    /// The series diverged in a specific time window.
    Window,
}

impl CauseKind {
    /// Stable lowercase tag used in the report and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            CauseKind::Stall => "stall",
            CauseKind::Critpath => "critpath",
            CauseKind::Kind => "kind",
            CauseKind::Page => "page",
            CauseKind::Migration => "migration",
            CauseKind::Window => "window",
        }
    }
}

/// One ranked explanation for a finding.
#[derive(Debug, Clone)]
pub struct Cause {
    /// Signal category.
    pub kind: CauseKind,
    /// Human name: bucket, kind, `page 17`, or a window description.
    pub name: String,
    /// Full diff path of the underlying row (empty for window causes).
    pub path: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// `after - before`.
    pub delta: f64,
    /// This cause's delta as a percentage of the finding's delta, when
    /// both are nanosecond-valued (`None` otherwise).
    pub share_pct: Option<f64>,
}

/// One regressed metric with its ranked causes.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Diff path of the regressed metric.
    pub path: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// Relative change, percent.
    pub rel_pct: f64,
    /// Ranked explanations, best first.
    pub causes: Vec<Cause>,
}

/// The full attribution report.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Regressed metrics, most severe first.
    pub findings: Vec<Finding>,
    /// Context notes (missing streams, no explanatory rows, …).
    pub notes: Vec<String>,
}

fn is_ns_leaf(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.ends_with("_ns") || Bucket::ALL.iter().any(|b| b.name() == leaf)
}

/// Classifies a diff row as an explanatory signal, with a display name.
fn cause_kind(path: &str) -> Option<(CauseKind, String)> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if path.contains("stall") && path.contains("totals") {
        if Bucket::ALL.iter().any(|b| b.name() == leaf) {
            return Some((CauseKind::Stall, leaf.to_string()));
        }
    }
    if path.contains("critpath") || path.contains("blame[") {
        let name = path
            .split_once("critpath.")
            .map(|(_, t)| t.to_string())
            .unwrap_or_else(|| leaf.to_string());
        return Some((CauseKind::Critpath, name));
    }
    if let Some((_, rest)) = path.split_once("kinds[name=") {
        if let Some((kind, tail)) = rest.split_once(']') {
            if tail == ".total_ns" || tail == ".count" {
                return Some((CauseKind::Kind, format!("{kind}{tail}")));
            }
        }
    }
    if let Some((_, rest)) = path.split_once("pages[page=") {
        if let Some((page, tail)) = rest.split_once(']') {
            return Some((
                CauseKind::Page,
                format!("page {page}{}", tail.replace('.', " ")),
            ));
        }
    }
    if let Some((_, name)) = path.split_once("gauges.") {
        if name.starts_with("proto.")
            && (name.contains("migration") || name.contains("policy") || name.contains("pingpong"))
        {
            return Some((CauseKind::Migration, name.to_string()));
        }
    }
    None
}

/// Shared-prefix length in path segments (split on `.` and `[`).
fn affinity(a: &str, b: &str) -> usize {
    let seg = |s: &str| {
        s.split(|c| c == '.' || c == '[')
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    seg(a)
        .iter()
        .zip(seg(b).iter())
        .take_while(|(x, y)| x == y)
        .count()
}

/// Compares the per-window stall mixes of two streams and reports the
/// first window where a bucket's time deviates by more than
/// `rel_pct` percent (with a small absolute floor to ignore jitter on
/// near-empty windows).
pub fn first_divergent_window(base: &Stream, cand: &Stream, rel_pct: f64) -> Option<Cause> {
    const ABS_FLOOR_NS: f64 = 1_000.0;
    let n = base.frames.len().max(cand.frames.len());
    let zero = [0u64; BUCKETS];
    for i in 0..n {
        let b = base.frames.get(i).map_or(zero, |f| f.stall_ns);
        let c = cand.frames.get(i).map_or(zero, |f| f.stall_ns);
        for bucket in Bucket::ALL {
            let (x, y) = (b[bucket as usize] as f64, c[bucket as usize] as f64);
            let dev = (y - x).abs();
            if dev > ABS_FLOOR_NS && dev > x.max(1.0) * rel_pct / 100.0 {
                let (s, e) = cand
                    .frames
                    .get(i)
                    .or(base.frames.get(i))
                    .map(|f| (f.start_ns, f.end_ns))
                    .unwrap_or((0, 0));
                return Some(Cause {
                    kind: CauseKind::Window,
                    name: format!(
                        "window {i} [{s}..{e}ns]: {} {}",
                        bucket.name(),
                        if y > x { "grew" } else { "shrank" }
                    ),
                    path: String::new(),
                    before: x,
                    after: y,
                    delta: y - x,
                    share_pct: None,
                });
            }
        }
    }
    None
}

/// Builds the attribution report for a failing diff. `streams` optionally
/// carries the baseline and candidate NDJSON series for window
/// attribution. `top` bounds both findings and causes-per-finding.
pub fn explain(
    base: &Value,
    cand: &Value,
    th: &Thresholds,
    streams: Option<(&Stream, &Stream)>,
    top: usize,
) -> Explanation {
    let d = diff(base, cand, th);
    explain_diff(&d, th, streams, top)
}

/// [`explain`] over an already-computed diff.
pub fn explain_diff(
    d: &Diff,
    th: &Thresholds,
    streams: Option<(&Stream, &Stream)>,
    top: usize,
) -> Explanation {
    let mut notes = Vec::new();
    // Findings: regressed rows that are not themselves explanatory
    // signals (a stall bucket regressing is a cause, not a headline) —
    // unless nothing else regressed.
    let mut findings: Vec<&DeltaRow> = d
        .regressions()
        .filter(|r| cause_kind(&r.path).is_none())
        .collect();
    if findings.is_empty() {
        findings = d.regressions().collect();
        if !findings.is_empty() {
            notes.push("only explanatory-signal metrics regressed; reporting them directly".into());
        }
    }
    findings.sort_by(|a, b| {
        b.delta
            .abs()
            .partial_cmp(&a.delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    findings.truncate(top);

    let window_cause = streams.and_then(|(b, c)| first_divergent_window(b, c, th.rel_pct));
    if streams.is_none() {
        notes.push("no series streams supplied; window attribution skipped".into());
    } else if window_cause.is_none() {
        notes.push("series streams agree within tolerance in every window".into());
    }

    // Candidate causes: every changed explanatory row moving in the
    // worse-for-the-finding direction (positive delta — all explanatory
    // signals are time/count-valued where growth explains slowdown).
    let candidates: Vec<(&DeltaRow, CauseKind, String)> = d
        .rows
        .iter()
        .filter(|r| r.delta > 0.0)
        .filter_map(|r| cause_kind(&r.path).map(|(k, n)| (r, k, n)))
        .collect();
    if candidates.is_empty() && !findings.is_empty() {
        notes.push(
            "no stall/critpath/kind/page deltas to join against (artifact carries none)".into(),
        );
    }

    let out = findings
        .into_iter()
        .map(|f| {
            let mut causes: Vec<(usize, Cause)> = candidates
                .iter()
                .map(|(r, k, name)| {
                    let share_pct = (is_ns_leaf(&f.path) && is_ns_leaf(&r.path) && f.delta != 0.0)
                        .then(|| 100.0 * r.delta / f.delta);
                    (
                        affinity(&f.path, &r.path),
                        Cause {
                            kind: *k,
                            name: name.clone(),
                            path: r.path.clone(),
                            before: r.before,
                            after: r.after,
                            delta: r.delta,
                            share_pct,
                        },
                    )
                })
                .collect();
            causes.sort_by(|(aff_a, a), (aff_b, b)| {
                aff_b
                    .cmp(aff_a)
                    .then_with(|| a.kind.cmp(&b.kind))
                    .then_with(|| {
                        b.delta
                            .abs()
                            .partial_cmp(&a.delta.abs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .then_with(|| a.path.cmp(&b.path))
            });
            let mut causes: Vec<Cause> = causes.into_iter().map(|(_, c)| c).collect();
            causes.truncate(top);
            if let Some(w) = &window_cause {
                causes.push(w.clone());
            }
            Finding {
                path: f.path.clone(),
                before: f.before,
                after: f.after,
                rel_pct: f.rel_pct,
                causes,
            }
        })
        .collect();
    Explanation {
        findings: out,
        notes,
    }
}

fn fmt_val(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

impl Explanation {
    /// Whether anything regressed at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The ranked "why" report.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== explain: {title} ===");
        if self.findings.is_empty() {
            let _ = writeln!(out, "no regressions to explain");
        }
        for (i, f) in self.findings.iter().enumerate() {
            let rel = if f.rel_pct.is_finite() {
                format!("{:+.1}%", f.rel_pct)
            } else {
                "new".into()
            };
            let _ = writeln!(
                out,
                "#{} {}: {} -> {} ({})",
                i + 1,
                f.path,
                fmt_val(f.before),
                fmt_val(f.after),
                rel
            );
            if f.causes.is_empty() {
                let _ = writeln!(out, "   (no explanatory deltas found)");
            }
            for c in &f.causes {
                let share = c
                    .share_pct
                    .map(|s| format!("  (share {s:.1}%)"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "   {:<9} {:<40} {:>14} -> {:<14} {:+}{share}",
                    c.kind.tag(),
                    c.name,
                    fmt_val(c.before),
                    fmt_val(c.after),
                    c.delta as i64
                );
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Deterministic JSON of the report.
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"path\": \"{}\", \"before\": {}, \"after\": {}, \"causes\": [",
                f.path,
                fmt_val(f.before),
                fmt_val(f.after)
            );
            for (k, c) in f.causes.iter().enumerate() {
                if k > 0 {
                    j.push(',');
                }
                let share = c
                    .share_pct
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "null".into());
                let _ = write!(
                    j,
                    "\n      {{\"kind\": \"{}\", \"name\": \"{}\", \"before\": {}, \"after\": {}, \"share_pct\": {share}}}",
                    c.kind.tag(),
                    c.name,
                    fmt_val(c.before),
                    fmt_val(c.after)
                );
            }
            j.push_str("\n    ]}");
        }
        j.push_str("\n  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(j, "\"{n}\"");
        }
        j.push_str("]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn doc(sim: u64, barrier: u64, fault_total: u64) -> Value {
        json::parse(&format!(
            r#"{{"kernel": "FFT", "sim_time_ns": {sim},
                "snapshot": {{"kinds": [
                    {{"name": "sync.barrier", "count": 4, "total_ns": {fault_total}, "min_ns": 1, "max_ns": 9}}
                ]}},
                "stall": {{"totals": {{"compute": 100, "barrier_wait": {barrier}, "page_fault": 50}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn injected_stall_regression_is_attributed() {
        let base = doc(1_000_000, 400_000, 10_000);
        let cand = doc(1_500_000, 900_000, 10_000);
        let th = Thresholds { abs: 0.0, rel_pct: 2.0 };
        let e = explain(&base, &cand, &th, None, 5);
        assert_eq!(e.findings.len(), 1);
        assert_eq!(e.findings[0].path, "sim_time_ns");
        let first = &e.findings[0].causes[0];
        assert_eq!(first.kind, CauseKind::Stall);
        assert_eq!(first.name, "barrier_wait");
        assert_eq!(first.share_pct.map(|s| s.round() as i64), Some(100));
        let text = e.render("t");
        assert!(text.contains("barrier_wait"));
        crate::json::validate(&e.to_json()).unwrap();
    }

    #[test]
    fn migration_gauge_delta_becomes_a_cause() {
        let mk = |sim: u64, migr: u64| {
            json::parse(&format!(
                r#"{{"sim_time_ns": {sim},
                    "snapshot": {{"gauges": {{"proto.migrations": {migr}, "proto.policy_considered": {}}}}}}}"#,
                migr * 10
            ))
            .unwrap()
        };
        let th = Thresholds { abs: 0.0, rel_pct: 2.0 };
        let e = explain(&mk(1_000_000, 2), &mk(1_400_000, 40), &th, None, 5);
        assert_eq!(e.findings[0].path, "sim_time_ns");
        let migr: Vec<&str> = e.findings[0]
            .causes
            .iter()
            .filter(|c| c.kind == CauseKind::Migration)
            .map(|c| c.name.as_str())
            .collect();
        // Ranked by |delta| within the kind: considered moved more.
        assert_eq!(migr, ["proto.policy_considered", "proto.migrations"]);
        assert!(e.render("t").contains("migration"));
    }

    #[test]
    fn clean_diff_explains_nothing() {
        let a = doc(1_000, 400, 10);
        let th = Thresholds { abs: 0.0, rel_pct: 2.0 };
        let e = explain(&a, &a, &th, None, 5);
        assert!(e.is_clean());
    }
}
