//! Critical-path profiler over the causal-edge DAG.
//!
//! [`analyze`] rebuilds the dependence structure of a run from a drained
//! event buffer and walks the longest cause→effect chain backwards from
//! the end of the program to its start. The walk partitions the whole
//! simulated interval `[0, total_ns]` into
//!
//! - **local segments** — time the path spends executing on one lane
//!   (a `(node, thread)` pair), attributed to the innermost span covering
//!   each instant (uncovered time is `compute`), and
//! - **edge segments** — time the path spends *waiting on a dependency*
//!   (a lock handoff, a barrier release, a page fetch, a message), each
//!   attributed to its [`EdgeKind`], layer, destination node and object.
//!
//! Because the segments partition `[0, total_ns]` exactly, the reported
//! critical-path breakdown always sums to the run's simulated time — the
//! invariant the `critpath` bench asserts.
//!
//! The walk only ever stands on thread lanes: the SAN's NIC→NIC message
//! edges ([`EdgeKind::MsgSend`]/[`MsgFetch`](EdgeKind::MsgFetch)/
//! [`MsgNotify`](EdgeKind::MsgNotify)) exist for the Perfetto arrows and
//! the sharing analyzer, but land on NIC tracks the walk never visits;
//! page movement reaches the path through the faulting thread's own
//! self-lane [`EdgeKind::PageFetch`] edge instead.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{EdgeKind, Event, EventRecord, Layer, NIC_TRACK};

/// Why [`analyze`] refused to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CritPathError {
    /// The sink's bounded buffer overflowed: `n` records were dropped, so
    /// the DAG is incomplete and any path would silently mis-attribute
    /// time. Raise the capacity (`ObsSink::with_capacity`, or
    /// `CABLES_OBS_CAP` for the benches) and rerun.
    DroppedEvents(u64),
    /// The buffer holds no thread-lane events to anchor the walk.
    NoEvents,
}

impl fmt::Display for CritPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CritPathError::DroppedEvents(n) => write!(
                f,
                "critical-path analysis refused: the event buffer dropped {n} record(s), \
                 so the causal DAG is incomplete; raise the obs buffer capacity \
                 (ObsSink::with_capacity / CABLES_OBS_CAP) and rerun"
            ),
            CritPathError::NoEvents => {
                write!(f, "critical-path analysis needs at least one thread-lane event")
            }
        }
    }
}

impl std::error::Error for CritPathError {}

/// One row of the blame table: every traversed edge aggregated by
/// `(kind, src_node, dst_node, obj)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameRow {
    /// The dependency kind.
    pub kind: EdgeKind,
    /// Node the cause happened on.
    pub src_node: u32,
    /// Node the effect happened on.
    pub dst_node: u32,
    /// The object the edges were about (page, lock id, thread id, bytes).
    pub obj: u64,
    /// Critical-path nanoseconds attributed to these edges.
    pub total_ns: u64,
    /// Number of path edges aggregated into the row.
    pub count: u64,
}

/// The critical-path report. All breakdowns sum to `total_ns` except
/// `by_page`, which only covers the path's page-movement edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    /// Total simulated time of the run — and, by construction, the exact
    /// sum of every `by_layer`/`by_kind`/`by_node` bucket.
    pub total_ns: u64,
    /// Path time per layer name, plus the `compute` pseudo-layer for
    /// uninstrumented execution. Sorted by name.
    pub by_layer: Vec<(String, u64)>,
    /// Path time per event/edge kind name (plus `compute`). Sorted.
    pub by_kind: Vec<(String, u64)>,
    /// Path time per node (local segments at the lane's node, edge
    /// segments at the destination node). Sorted by node.
    pub by_node: Vec<(u32, u64)>,
    /// Path time per page, from the traversed page-fetch edges only.
    pub by_page: Vec<(u64, u64)>,
    /// Edge aggregates on the path, heaviest first.
    pub blame: Vec<BlameRow>,
    /// Number of causal edges the walk traversed.
    pub edges_on_path: u64,
}

/// A lane: one Chrome-trace track — a simulated thread or a node's NIC.
type Lane = (u32, u64);

/// A flattened, disjoint piece of a lane's span coverage.
#[derive(Debug, Clone, Copy)]
struct Flat {
    start: u64,
    end: u64,
    layer: Layer,
    kind: &'static str,
}

/// An edge indexed by its effect lane.
#[derive(Debug, Clone, Copy)]
struct EdgeRef {
    effect_ns: u64,
    src_lane: Lane,
    src_ns: u64,
    kind: EdgeKind,
    obj: u64,
    dst_node: u32,
}

/// Flattens one lane's spans into disjoint intervals where the innermost
/// covering span wins (spans on a thread lane come from one thread's
/// nested scopes, so they nest properly; slight violations degrade to a
/// deterministic stack order, never to overlap).
fn flatten(mut spans: Vec<(u64, u64, Layer, &'static str)>) -> Vec<Flat> {
    spans.sort_by_key(|&(s, e, _, _)| (s, std::cmp::Reverse(e)));
    let mut out: Vec<Flat> = Vec::with_capacity(spans.len());
    let mut stack: Vec<(u64, Layer, &'static str)> = Vec::new();
    let mut pos = 0u64;
    let emit = |out: &mut Vec<Flat>, start: u64, end: u64, layer: Layer, kind| {
        if end > start {
            out.push(Flat { start, end, layer, kind });
        }
    };
    for (s, e, layer, kind) in spans {
        while let Some(&(top_end, t_layer, t_kind)) = stack.last() {
            if top_end > s {
                break;
            }
            emit(&mut out, pos.max(0), top_end, t_layer, t_kind);
            pos = pos.max(top_end);
            stack.pop();
        }
        if let Some(&(_, t_layer, t_kind)) = stack.last() {
            emit(&mut out, pos, s, t_layer, t_kind);
        }
        pos = pos.max(s);
        if e > pos {
            stack.push((e, layer, kind));
        }
    }
    while let Some((top_end, t_layer, t_kind)) = stack.pop() {
        emit(&mut out, pos, top_end, t_layer, t_kind);
        pos = pos.max(top_end);
    }
    out
}

/// Union (merged-interval) span coverage of the busiest non-NIC lane, in
/// nanoseconds — a provable lower bound on the critical path, used by the
/// `critpath` bench's sanity assertion.
pub fn busiest_lane_span_ns(events: &[EventRecord]) -> u64 {
    let mut lanes: BTreeMap<Lane, Vec<(u64, u64)>> = BTreeMap::new();
    for e in events {
        if e.track == NIC_TRACK || e.dur_ns == 0 {
            continue;
        }
        let s = e.at.as_nanos();
        lanes
            .entry((e.node.0, e.track))
            .or_default()
            .push((s, s + e.dur_ns));
    }
    let mut best = 0u64;
    for (_, mut iv) in lanes {
        iv.sort_unstable();
        let mut covered = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (s, e) in iv {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    covered += ce - cs;
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            covered += ce - cs;
        }
        best = best.max(covered);
    }
    best
}

/// Walks the critical path of a run.
///
/// `events` is the drained (or cloned) sink buffer; `total_ns` is the
/// run's final simulated time; `dropped` is
/// `ObsSink::dropped_events()` — a non-zero value is refused, because a
/// truncated buffer would silently mis-attribute time.
///
/// # Errors
///
/// [`CritPathError::DroppedEvents`] when the buffer overflowed,
/// [`CritPathError::NoEvents`] when no thread-lane activity exists.
pub fn analyze(
    events: &[EventRecord],
    total_ns: u64,
    dropped: u64,
) -> Result<CritPath, CritPathError> {
    if dropped > 0 {
        return Err(CritPathError::DroppedEvents(dropped));
    }

    // Index spans and edges by lane.
    let mut span_by_lane: BTreeMap<Lane, Vec<(u64, u64, Layer, &'static str)>> = BTreeMap::new();
    let mut edges_by_lane: BTreeMap<Lane, Vec<EdgeRef>> = BTreeMap::new();
    let mut lane_last: BTreeMap<Lane, u64> = BTreeMap::new();
    for e in events {
        let lane = (e.node.0, e.track);
        let at = e.at.as_nanos();
        if let Event::Edge { kind, src_node, src_track, src_ns, obj } = e.event {
            // Only forward-in-time edges enter the walk index: the cursor
            // must strictly decrease, which guarantees termination and
            // acyclicity. Zero-latency edges (local same-time handoffs)
            // carry no path time anyway.
            if src_ns < at && e.track != NIC_TRACK {
                edges_by_lane.entry(lane).or_default().push(EdgeRef {
                    effect_ns: at,
                    src_lane: (src_node, src_track),
                    src_ns,
                    kind,
                    obj,
                    dst_node: e.node.0,
                });
            }
        } else if e.dur_ns > 0 {
            span_by_lane
                .entry(lane)
                .or_default()
                .push((at, at + e.dur_ns, e.layer, e.event.kind_name()));
        }
        if e.track != NIC_TRACK {
            let end = at + e.dur_ns;
            let last = lane_last.entry(lane).or_insert(0);
            *last = (*last).max(end);
        }
    }
    // Deterministic candidate preference inside one lane: latest effect,
    // then latest source (the tightest dependency), then the most specific
    // kind (typed edges precede the generic Wakeup in EdgeKind::ALL).
    for v in edges_by_lane.values_mut() {
        v.sort_by_key(|e| {
            (
                e.effect_ns,
                e.src_ns,
                std::cmp::Reverse(e.kind as usize),
                e.src_lane,
            )
        });
    }
    let flat_by_lane: BTreeMap<Lane, Vec<Flat>> = span_by_lane
        .into_iter()
        .map(|(lane, spans)| (lane, flatten(spans)))
        .collect();

    // The walk ends on the lane that was active last (ties: lowest lane).
    let end_lane = lane_last
        .iter()
        .max_by_key(|&(lane, &end)| (end, std::cmp::Reverse(*lane)))
        .map(|(lane, _)| *lane)
        .ok_or(CritPathError::NoEvents)?;

    let mut by_layer: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_node: BTreeMap<u32, u64> = BTreeMap::new();
    let mut by_page: BTreeMap<u64, u64> = BTreeMap::new();
    let mut blame: BTreeMap<(usize, u32, u32, u64), (u64, u64)> = BTreeMap::new();
    let mut edges_on_path = 0u64;

    // Attributes the local interval [a, b) on `lane` by span coverage.
    let empty: Vec<Flat> = Vec::new();
    let local = |lane: Lane, a: u64, b: u64,
                     by_layer: &mut BTreeMap<String, u64>,
                     by_kind: &mut BTreeMap<String, u64>,
                     by_node: &mut BTreeMap<u32, u64>| {
        if b <= a {
            return;
        }
        *by_node.entry(lane.0).or_default() += b - a;
        let flats = flat_by_lane.get(&lane).unwrap_or(&empty);
        let mut covered = 0u64;
        let from = flats.partition_point(|f| f.end <= a);
        for f in &flats[from..] {
            if f.start >= b {
                break;
            }
            let lo = f.start.max(a);
            let hi = f.end.min(b);
            if hi > lo {
                *by_layer.entry(f.layer.name().to_string()).or_default() += hi - lo;
                *by_kind.entry(f.kind.to_string()).or_default() += hi - lo;
                covered += hi - lo;
            }
        }
        let uncovered = (b - a).saturating_sub(covered);
        if uncovered > 0 {
            *by_layer.entry("compute".to_string()).or_default() += uncovered;
            *by_kind.entry("compute".to_string()).or_default() += uncovered;
        }
    };

    let mut lane = end_lane;
    let mut cursor = total_ns;
    // Each traversed edge strictly decreases the cursor, so the loop is
    // bounded by the edge count; the explicit cap is a defensive backstop.
    let mut fuel = events.len() as u64 + 16;
    while fuel > 0 {
        fuel -= 1;
        let cand = edges_by_lane.get(&lane).and_then(|v| {
            let idx = v.partition_point(|e| e.effect_ns <= cursor);
            (idx > 0).then(|| v[idx - 1])
        });
        match cand {
            Some(e) => {
                local(lane, e.effect_ns, cursor, &mut by_layer, &mut by_kind, &mut by_node);
                let w = e.effect_ns - e.src_ns;
                let kind_name = format!("edge.{}", e.kind.name());
                *by_layer.entry(e.kind.layer().name().to_string()).or_default() += w;
                *by_kind.entry(kind_name).or_default() += w;
                *by_node.entry(e.dst_node).or_default() += w;
                if e.kind == EdgeKind::PageFetch {
                    *by_page.entry(e.obj).or_default() += w;
                }
                let row = blame
                    .entry((e.kind as usize, e.src_lane.0, e.dst_node, e.obj))
                    .or_default();
                row.0 += w;
                row.1 += 1;
                edges_on_path += 1;
                lane = e.src_lane;
                cursor = e.src_ns;
            }
            None => {
                local(lane, 0, cursor, &mut by_layer, &mut by_kind, &mut by_node);
                cursor = 0;
                break;
            }
        }
    }
    if cursor > 0 {
        // Fuel ran out (cannot happen with a well-formed buffer): close
        // the partition so the totals still add up.
        local(lane, 0, cursor, &mut by_layer, &mut by_kind, &mut by_node);
    }

    let mut blame: Vec<BlameRow> = blame
        .into_iter()
        .map(|((kind_idx, src_node, dst_node, obj), (total_ns, count))| BlameRow {
            kind: EdgeKind::ALL[kind_idx_to_pos(kind_idx)],
            src_node,
            dst_node,
            obj,
            total_ns,
            count,
        })
        .collect();
    blame.sort_by_key(|r| {
        (
            std::cmp::Reverse(r.total_ns),
            r.kind as usize,
            r.src_node,
            r.dst_node,
            r.obj,
        )
    });

    Ok(CritPath {
        total_ns,
        by_layer: by_layer.into_iter().collect(),
        by_kind: by_kind.into_iter().collect(),
        by_node: by_node.into_iter().collect(),
        by_page: by_page.into_iter().collect(),
        blame,
        edges_on_path,
    })
}

/// Maps an `EdgeKind as usize` discriminant back to its `ALL` position
/// (they coincide; kept as a function so a reordering shows up in tests).
fn kind_idx_to_pos(idx: usize) -> usize {
    idx
}

impl CritPath {
    /// Sum of every `by_layer` bucket — equals `total_ns` by construction.
    pub fn layer_sum_ns(&self) -> u64 {
        self.by_layer.iter().map(|&(_, v)| v).sum()
    }

    /// Renders the report as text tables (layer breakdown + blame table).
    pub fn render(&self, title: &str, top: usize) -> String {
        let mut out = String::new();
        let pct = |v: u64| {
            if self.total_ns == 0 {
                0.0
            } else {
                100.0 * v as f64 / self.total_ns as f64
            }
        };
        let _ = writeln!(out, "=== {title}: critical path ({} ns) ===", self.total_ns);
        let _ = writeln!(out, "{:<18} {:>14} {:>7}", "layer", "ns", "%");
        let _ = writeln!(out, "{}", "-".repeat(41));
        let mut layers = self.by_layer.clone();
        layers.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        for (name, v) in &layers {
            let _ = writeln!(out, "{:<18} {:>14} {:>6.1}%", name, v, pct(*v));
        }
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>6.1}%",
            "total",
            self.layer_sum_ns(),
            pct(self.layer_sum_ns())
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "=== {title}: blame table (top {top} edges) ===");
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>11} {:>8} {:>6} {:>14} {:>7}",
            "edge", "obj", "nodes", "count", "", "ns", "%"
        );
        let _ = writeln!(out, "{}", "-".repeat(76));
        for r in self.blame.iter().take(top) {
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>5} -> {:<3} {:>8} {:>6} {:>14} {:>6.1}%",
                r.kind.name(),
                r.obj,
                r.src_node,
                r.dst_node,
                r.count,
                "",
                r.total_ns,
                pct(r.total_ns)
            );
        }
        out
    }

    /// Serializes the report as deterministic JSON (sorted keys; the
    /// workspace's `serde` is an offline marker shim, so this is
    /// hand-rolled like `MetricsSnapshot::to_json`).
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(1024);
        let _ = write!(
            j,
            "{{\n  \"total_ns\": {},\n  \"edges_on_path\": {},",
            self.total_ns, self.edges_on_path
        );
        let map = |j: &mut String, name: &str, items: &[(String, u64)]| {
            let _ = write!(j, "\n  \"{name}\": {{");
            for (i, (k, v)) in items.iter().enumerate() {
                if i > 0 {
                    j.push(',');
                }
                let _ = write!(j, "\n    \"{k}\": {v}");
            }
            j.push_str("\n  },");
        };
        map(&mut j, "by_layer", &self.by_layer);
        map(&mut j, "by_kind", &self.by_kind);
        let nodes: Vec<(String, u64)> = self
            .by_node
            .iter()
            .map(|&(n, v)| (n.to_string(), v))
            .collect();
        map(&mut j, "by_node", &nodes);
        let pages: Vec<(String, u64)> = self
            .by_page
            .iter()
            .map(|&(p, v)| (p.to_string(), v))
            .collect();
        map(&mut j, "by_page", &pages);
        j.push_str("\n  \"blame\": [");
        for (i, r) in self.blame.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"kind\": \"{}\", \"src_node\": {}, \"dst_node\": {}, \"obj\": {}, \"total_ns\": {}, \"count\": {}}}",
                r.kind.name(),
                r.src_node,
                r.dst_node,
                r.obj,
                r.total_ns,
                r.count
            );
        }
        j.push_str("\n  ]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventRecord, Layer};
    use sim::{NodeId, SimTime};

    fn span(at: u64, dur: u64, node: u32, track: u64, event: Event, layer: Layer) -> EventRecord {
        EventRecord {
            at: SimTime::from_nanos(at),
            dur_ns: dur,
            node: NodeId(node),
            track,
            layer,
            event,
        }
    }

    fn edge(
        at: u64,
        node: u32,
        track: u64,
        kind: EdgeKind,
        src_node: u32,
        src_track: u64,
        src_ns: u64,
        obj: u64,
    ) -> EventRecord {
        EventRecord {
            at: SimTime::from_nanos(at),
            dur_ns: 0,
            node: NodeId(node),
            track,
            layer: kind.layer(),
            event: Event::Edge {
                kind,
                src_node,
                src_track,
                src_ns,
                obj,
            },
        }
    }

    #[test]
    fn dropped_events_refused() {
        let err = analyze(&[], 100, 3).unwrap_err();
        assert!(matches!(err, CritPathError::DroppedEvents(3)));
        assert!(err.to_string().contains("dropped 3"));
    }

    #[test]
    fn empty_buffer_refused() {
        assert_eq!(analyze(&[], 100, 0).unwrap_err(), CritPathError::NoEvents);
    }

    #[test]
    fn single_lane_is_all_local() {
        let evs = vec![span(
            10,
            50,
            0,
            1,
            Event::LockWait { id: 7 },
            Layer::Sync,
        )];
        let cp = analyze(&evs, 100, 0).unwrap();
        assert_eq!(cp.layer_sum_ns(), 100);
        assert_eq!(cp.edges_on_path, 0);
        let sync: u64 = cp
            .by_layer
            .iter()
            .find(|(n, _)| n == "sync")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(sync, 50);
        let compute = cp
            .by_layer
            .iter()
            .find(|(n, _)| n == "compute")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(compute, 50);
    }

    #[test]
    fn handoff_edge_crosses_lanes_and_partitions_exactly() {
        // Thread (0,1) runs 0..40, releases a lock; thread (1,2) acquires
        // at 60 and runs to 100.
        let evs = vec![
            span(0, 40, 0, 1, Event::LockWait { id: 7 }, Layer::Sync),
            edge(60, 1, 2, EdgeKind::LockHandoff, 0, 1, 40, 7),
            span(60, 40, 1, 2, Event::LockWait { id: 7 }, Layer::Sync),
        ];
        let cp = analyze(&evs, 100, 0).unwrap();
        assert_eq!(cp.layer_sum_ns(), 100);
        assert_eq!(cp.edges_on_path, 1);
        assert_eq!(cp.blame.len(), 1);
        assert_eq!(cp.blame[0].kind, EdgeKind::LockHandoff);
        assert_eq!(cp.blame[0].total_ns, 20);
        assert_eq!(cp.blame[0].src_node, 0);
        assert_eq!(cp.blame[0].dst_node, 1);
        // Node 1: local 60..100 plus the 20ns edge; node 0: local 0..40.
        let n0 = cp.by_node.iter().find(|&&(n, _)| n == 0).unwrap().1;
        let n1 = cp.by_node.iter().find(|&&(n, _)| n == 1).unwrap().1;
        assert_eq!(n0, 40);
        assert_eq!(n1, 60);
    }

    #[test]
    fn page_fetch_edges_feed_by_page() {
        let evs = vec![
            span(0, 100, 0, 1, Event::FaultSpan { page: 9, write: true }, Layer::Proto),
            edge(80, 0, 1, EdgeKind::PageFetch, 0, 1, 20, 9),
        ];
        let cp = analyze(&evs, 100, 0).unwrap();
        assert_eq!(cp.layer_sum_ns(), 100);
        assert_eq!(cp.by_page, vec![(9, 60)]);
    }

    #[test]
    fn nic_lane_edges_are_ignored_by_the_walk() {
        let evs = vec![
            span(0, 100, 0, 1, Event::LockWait { id: 1 }, Layer::Sync),
            // A SAN arrow between NIC lanes must not strand the walk.
            edge(50, 1, NIC_TRACK, EdgeKind::MsgSend, 0, NIC_TRACK, 10, 64),
        ];
        let cp = analyze(&evs, 100, 0).unwrap();
        assert_eq!(cp.edges_on_path, 0);
        assert_eq!(cp.layer_sum_ns(), 100);
    }

    #[test]
    fn busiest_lane_union_coverage() {
        let evs = vec![
            span(0, 50, 0, 1, Event::LockWait { id: 1 }, Layer::Sync),
            span(25, 50, 0, 1, Event::LockWait { id: 2 }, Layer::Sync),
            span(0, 10, 1, 2, Event::LockWait { id: 3 }, Layer::Sync),
            // NIC lanes never count.
            span(0, 500, 0, NIC_TRACK, Event::SanSend { to: 1, bytes: 4 }, Layer::San),
        ];
        assert_eq!(busiest_lane_span_ns(&evs), 75);
    }

    #[test]
    fn render_and_json_are_deterministic_and_valid() {
        let evs = vec![
            span(0, 40, 0, 1, Event::LockWait { id: 7 }, Layer::Sync),
            edge(60, 1, 2, EdgeKind::LockHandoff, 0, 1, 40, 7),
            span(60, 40, 1, 2, Event::LockWait { id: 7 }, Layer::Sync),
        ];
        let a = analyze(&evs, 100, 0).unwrap();
        let b = analyze(&evs, 100, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        crate::json::validate(&a.to_json()).expect("critpath JSON parses");
        let text = a.render("TEST", 5);
        assert!(text.contains("lock_handoff"));
        assert!(text.contains("critical path"));
    }
}
