//! Chrome-trace (`chrome://tracing` / Perfetto) JSON exporter.
//!
//! Nodes map to trace *processes* (`pid`), tracks — simulated threads or
//! the NIC lane — map to trace *threads* (`tid`). Spans become `"X"`
//! (complete) events with a duration; instants become `"i"` events with
//! thread scope; causal edges become Perfetto *flow* pairs (`"s"` at the
//! cause, `"f"` at the effect) so arrows connect the lanes in the
//! timeline. Timestamps are simulated microseconds with nanosecond
//! precision, formatted as exact decimals (never floats), so identical
//! runs export byte-identical files (flow ids are assigned sequentially
//! in recording order).

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::event::{Event, EventRecord, NIC_TRACK};

/// Formats nanoseconds as fixed-point microseconds ("12.345").
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn track_label(track: u64) -> String {
    if track == NIC_TRACK {
        "nic".to_string()
    } else {
        format!("t{track}")
    }
}

/// Renders `events` as a Chrome-trace JSON document.
///
/// Metadata (`process_name`/`thread_name`) is emitted first, sorted by
/// `(node, track)`; the events follow in recording order.
pub fn export(events: &[EventRecord]) -> String {
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    let mut tracks: BTreeSet<(u32, u64)> = BTreeSet::new();
    for e in events {
        nodes.insert(e.node.0);
        tracks.insert((e.node.0, e.track));
        if let Event::Edge { src_node, src_track, .. } = e.event {
            nodes.insert(src_node);
            tracks.insert((src_node, src_track));
        }
    }
    let mut j = String::with_capacity(256 + events.len() * 96);
    j.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |j: &mut String| {
        if first {
            first = false;
        } else {
            j.push(',');
        }
        j.push('\n');
    };
    for n in &nodes {
        sep(&mut j);
        let _ = write!(
            j,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\"args\":{{\"name\":\"node {n}\"}}}}"
        );
    }
    for (n, t) in &tracks {
        sep(&mut j);
        let _ = write!(
            j,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":{t},\"args\":{{\"name\":\"{}\"}}}}",
            track_label(*t)
        );
    }
    let mut flow_id = 0u64;
    for e in events {
        if let Event::Edge { src_node, src_track, src_ns, .. } = e.event {
            // A causal edge renders as a Perfetto flow pair: `"s"` at the
            // cause endpoint, `"f"` (binding to the enclosing slice end)
            // at the effect endpoint.
            flow_id += 1;
            sep(&mut j);
            let _ = write!(
                j,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"id\":{},\"ph\":\"s\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{",
                e.event.kind_name(),
                e.layer.name(),
                flow_id,
                src_node,
                src_track,
                us(src_ns)
            );
            e.event.write_args(&mut j);
            j.push_str("}}");
            sep(&mut j);
            let _ = write!(
                j,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"id\":{},\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{}}}}",
                e.event.kind_name(),
                e.layer.name(),
                flow_id,
                e.node.0,
                e.track,
                us(e.at.as_nanos())
            );
            continue;
        }
        sep(&mut j);
        let _ = write!(
            j,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            e.event.kind_name(),
            e.layer.name(),
            e.node.0,
            e.track,
            us(e.at.as_nanos())
        );
        if e.dur_ns > 0 {
            let _ = write!(j, ",\"ph\":\"X\",\"dur\":{}", us(e.dur_ns));
        } else {
            j.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        j.push_str(",\"args\":{");
        e.event.write_args(&mut j);
        j.push_str("}}");
    }
    j.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Layer};
    use sim::{NodeId, SimTime};

    fn rec(at: u64, dur: u64, node: u32, track: u64, event: Event, layer: Layer) -> EventRecord {
        EventRecord {
            at: SimTime::from_nanos(at),
            dur_ns: dur,
            node: NodeId(node),
            track,
            layer,
            event,
        }
    }

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let evs = vec![
            rec(0, 7_800, 0, NIC_TRACK, Event::SanSend { to: 1, bytes: 4 }, Layer::San),
            rec(500, 0, 1, 3, Event::Fault { page: 7, write: true }, Layer::Proto),
            rec(900, 22_000, 1, 3, Event::FaultSpan { page: 7, write: true }, Layer::Proto),
        ];
        let a = export(&evs);
        let b = export(&evs);
        assert_eq!(a, b);
        crate::json::validate(&a).expect("chrome trace parses");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"name\":\"node 0\""));
        assert!(a.contains("\"name\":\"nic\""));
        // 7800ns span renders as 7.800us.
        assert!(a.contains("\"dur\":7.800"));
    }

    #[test]
    fn empty_export_is_valid() {
        let a = export(&[]);
        crate::json::validate(&a).expect("empty trace parses");
    }

    #[test]
    fn edges_export_as_flow_pairs() {
        use crate::event::EdgeKind;
        let evs = vec![rec(
            900,
            0,
            1,
            5,
            Event::Edge {
                kind: EdgeKind::LockHandoff,
                src_node: 0,
                src_track: 3,
                src_ns: 100,
                obj: 7,
            },
            EdgeKind::LockHandoff.layer(),
        )];
        let a = export(&evs);
        crate::json::validate(&a).expect("flow trace parses");
        assert!(a.contains("\"ph\":\"s\""), "missing flow start: {a}");
        assert!(a.contains("\"ph\":\"f\",\"bp\":\"e\""), "missing flow finish: {a}");
        // Both endpoints get track metadata, and the pair shares an id.
        assert!(a.contains("\"pid\":0,\"tid\":3,\"ts\":0.100"));
        assert!(a.contains("\"pid\":1,\"tid\":5,\"ts\":0.900"));
        assert!(a.contains("\"id\":1"));
    }
}
