//! Per-node and per-page metric registries and the serializable snapshot.
//!
//! All quantities are simulated: counters count protocol/runtime events,
//! histograms bucket simulated-nanosecond durations into fixed log2
//! buckets. Aggregation containers are ordered (`Vec` indexed by node,
//! `BTreeMap` keyed by page/kind), so snapshots — and their JSON — are
//! deterministic.

use std::collections::BTreeMap;
use std::fmt::Write;

use serde::{Deserialize, Serialize};

use crate::event::{Event, Layer};

/// Number of log2 duration buckets (bucket `i` holds durations with
/// `floor(log2(ns)) == i`, clamped; bucket 0 also holds 0ns).
pub const HIST_BUCKETS: usize = 32;

/// A fixed-bucket log2 histogram of simulated durations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Sample count per bucket.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
    }

    /// The bucket index for a duration.
    pub fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Total sample count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Interpolated percentile (`p` in `[0, 100]`) of the recorded
    /// durations, in nanoseconds. The exact sample values are gone — only
    /// their log2 bucket survives — so the estimate interpolates linearly
    /// inside the target bucket (bucket `i` covers `[2^i, 2^{i+1})`;
    /// bucket 0 covers `[0, 2)`). Deterministic: pure integer/f64
    /// arithmetic on the counts, rounded to whole nanoseconds.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (p / 100.0) * n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return (lo as f64 + frac * (hi - lo) as f64).round() as u64;
            }
            cum = next;
        }
        // Unreachable for p <= 100; fall back to the top of the last
        // non-empty bucket.
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0);
        1u64 << (last + 1)
    }
}

/// Per-node aggregates: simulated time and event counts per layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Node id.
    pub node: u32,
    /// Inclusive span time per layer, in simulated ns (indexed by
    /// [`Layer::index`]).
    pub layer_ns: [u64; Layer::COUNT],
    /// Event count per layer.
    pub layer_events: [u64; Layer::COUNT],
}

impl NodeMetrics {
    fn new(node: u32) -> Self {
        NodeMetrics {
            node,
            layer_ns: [0; Layer::COUNT],
            layer_events: [0; Layer::COUNT],
        }
    }
}

/// Aggregate over every event of one kind (a Table-3-style latency row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindAgg {
    /// Dotted kind name (`layer.kind`).
    pub name: String,
    /// Number of events.
    pub count: u64,
    /// Total simulated span time, ns (0 for pure instants).
    pub total_ns: u64,
    /// Shortest span, ns.
    pub min_ns: u64,
    /// Longest span, ns.
    pub max_ns: u64,
}

/// Per-page protocol activity ("why did this page bounce?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageMetrics {
    /// Page index.
    pub page: u64,
    /// Read + write faults.
    pub faults: u64,
    /// Fetches from home.
    pub fetches: u64,
    /// Diffs sent home.
    pub diffs: u64,
    /// Acquire-time invalidations.
    pub invals: u64,
    /// Home migrations of the containing chunk.
    pub migrates: u64,
    /// Bitmask of nodes that faulted on the page (node `i` sets bit
    /// `min(i, 63)`; clusters beyond 64 nodes saturate the top bit).
    pub nodes_mask: u64,
    /// Ping-pong handoffs: faults whose node differs from the previous
    /// faulting node (the false-sharing smell).
    pub handoffs: u64,
}

impl PageMetrics {
    /// Number of distinct nodes that faulted on the page (capped at 64).
    pub fn sharers(&self) -> u32 {
        self.nodes_mask.count_ones()
    }
}

/// A deterministic, serializable snapshot of every registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Events discarded because the bounded event buffer was full (the
    /// metrics below still include them).
    pub dropped_events: u64,
    /// Per-node per-layer aggregates, indexed by node id.
    pub nodes: Vec<NodeMetrics>,
    /// Per-kind latency aggregates, sorted by kind name.
    pub kinds: Vec<KindAgg>,
    /// Per-layer duration histograms, in [`Layer::ALL`] order.
    pub hists: Vec<Histogram>,
    /// Per-page protocol activity, sorted by page index.
    pub pages: Vec<PageMetrics>,
    /// Named gauges (e.g. sync max-waiter high-water marks), sorted by
    /// name.
    pub gauges: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Total inclusive span time of `layer` across all nodes.
    pub fn layer_total_ns(&self, layer: Layer) -> u64 {
        self.nodes.iter().map(|n| n.layer_ns[layer.index()]).sum()
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the snapshot as deterministic JSON (hand-rolled: the
    /// workspace's `serde` is an offline marker shim).
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(4096);
        j.push_str("{\n  \"dropped_events\": ");
        let _ = write!(j, "{}", self.dropped_events);
        j.push_str(",\n  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str("\n    {\"node\": ");
            let _ = write!(j, "{}", n.node);
            j.push_str(", \"layer_ns\": {");
            for (k, l) in Layer::ALL.iter().enumerate() {
                if k > 0 {
                    j.push_str(", ");
                }
                let _ = write!(j, "\"{}\": {}", l.name(), n.layer_ns[l.index()]);
            }
            j.push_str("}, \"layer_events\": {");
            for (k, l) in Layer::ALL.iter().enumerate() {
                if k > 0 {
                    j.push_str(", ");
                }
                let _ = write!(j, "\"{}\": {}", l.name(), n.layer_events[l.index()]);
            }
            j.push_str("}}");
        }
        j.push_str("\n  ],\n  \"kinds\": [");
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                k.name, k.count, k.total_ns, k.min_ns, k.max_ns
            );
        }
        j.push_str("\n  ],\n  \"hists\": {");
        for (i, l) in Layer::ALL.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let h = &self.hists[l.index()];
            let _ = write!(j, "\n    \"{}\": {{\"buckets\": [", l.name());
            for (b, v) in h.buckets.iter().enumerate() {
                if b > 0 {
                    j.push(',');
                }
                let _ = write!(j, "{v}");
            }
            let _ = write!(
                j,
                "], \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0)
            );
        }
        j.push_str("\n  },\n  \"pages\": [");
        for (i, p) in self.pages.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"page\": {}, \"faults\": {}, \"fetches\": {}, \"diffs\": {}, \"invals\": {}, \"migrates\": {}, \"sharers\": {}, \"handoffs\": {}}}",
                p.page, p.faults, p.fetches, p.diffs, p.invals, p.migrates,
                p.sharers(), p.handoffs
            );
        }
        j.push_str("\n  ],\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(j, "\n    \"{name}\": {v}");
        }
        j.push_str("\n  }\n}\n");
        j
    }

    /// Reconstructs a snapshot from a parsed [`crate::json::Value`] tree
    /// with the [`MetricsSnapshot::to_json`] shape — the `cablestat` CLI's
    /// loader. Lossy only where the export is: the serialized `sharers`
    /// count cannot recover *which* nodes shared a page, so `nodes_mask`
    /// is rebuilt with that many low bits set (`sharers()` round-trips).
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped field.
    pub fn from_value(v: &crate::json::Value) -> Result<MetricsSnapshot, String> {
        let need = |o: Option<u64>, what: &str| o.ok_or_else(|| format!("missing {what}"));
        let obj = v.as_obj().ok_or("snapshot is not an object")?;
        let _ = obj;
        let dropped_events = need(v.get("dropped_events").and_then(|x| x.as_u64()), "dropped_events")?;
        let mut nodes = Vec::new();
        for (i, n) in v
            .get("nodes")
            .and_then(|x| x.as_arr())
            .ok_or("missing nodes")?
            .iter()
            .enumerate()
        {
            let node = need(n.get("node").and_then(|x| x.as_u64()), "node id")? as u32;
            let mut m = NodeMetrics::new(node);
            for l in Layer::ALL {
                m.layer_ns[l.index()] = need(
                    n.get("layer_ns").and_then(|x| x.get(l.name())).and_then(|x| x.as_u64()),
                    &format!("nodes[{i}].layer_ns.{}", l.name()),
                )?;
                m.layer_events[l.index()] = need(
                    n.get("layer_events").and_then(|x| x.get(l.name())).and_then(|x| x.as_u64()),
                    &format!("nodes[{i}].layer_events.{}", l.name()),
                )?;
            }
            nodes.push(m);
        }
        let mut kinds = Vec::new();
        for k in v
            .get("kinds")
            .and_then(|x| x.as_arr())
            .ok_or("missing kinds")?
        {
            kinds.push(KindAgg {
                name: k
                    .get("name")
                    .and_then(|x| x.as_str())
                    .ok_or("kind without name")?
                    .to_string(),
                count: need(k.get("count").and_then(|x| x.as_u64()), "kind count")?,
                total_ns: need(k.get("total_ns").and_then(|x| x.as_u64()), "kind total_ns")?,
                min_ns: need(k.get("min_ns").and_then(|x| x.as_u64()), "kind min_ns")?,
                max_ns: need(k.get("max_ns").and_then(|x| x.as_u64()), "kind max_ns")?,
            });
        }
        let mut hists = Vec::new();
        for l in Layer::ALL {
            let b = v
                .get("hists")
                .and_then(|x| x.get(l.name()))
                .and_then(|x| x.get("buckets"))
                .and_then(|x| x.as_arr())
                .ok_or_else(|| format!("missing hists.{}.buckets", l.name()))?;
            if b.len() != HIST_BUCKETS {
                return Err(format!("hists.{} has {} buckets", l.name(), b.len()));
            }
            let mut h = Histogram::default();
            for (i, x) in b.iter().enumerate() {
                h.buckets[i] = need(x.as_u64(), "hist bucket")?;
            }
            hists.push(h);
        }
        let mut pages = Vec::new();
        for p in v
            .get("pages")
            .and_then(|x| x.as_arr())
            .ok_or("missing pages")?
        {
            let g = |k: &str| need(p.get(k).and_then(|x| x.as_u64()), &format!("page {k}"));
            let sharers = g("sharers")?;
            pages.push(PageMetrics {
                page: g("page")?,
                faults: g("faults")?,
                fetches: g("fetches")?,
                diffs: g("diffs")?,
                invals: g("invals")?,
                migrates: g("migrates")?,
                nodes_mask: if sharers >= 64 {
                    u64::MAX
                } else {
                    (1u64 << sharers) - 1
                },
                handoffs: g("handoffs")?,
            });
        }
        let mut gauges = Vec::new();
        for (name, x) in v
            .get("gauges")
            .and_then(|x| x.as_obj())
            .ok_or("missing gauges")?
        {
            gauges.push((name.clone(), need(x.as_u64(), "gauge value")?));
        }
        Ok(MetricsSnapshot {
            dropped_events,
            nodes,
            kinds,
            hists,
            pages,
            gauges,
        })
    }
}

/// Mutable registry state, owned by the sink (behind its mutex).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    nodes: Vec<NodeMetrics>,
    kinds: BTreeMap<&'static str, (u64, u64, u64, u64)>, // count, total, min, max
    hists: Vec<Histogram>,
    pages: BTreeMap<u64, PageMetrics>,
    /// Last node to fault on each page (drives `PageMetrics::handoffs`).
    page_last: BTreeMap<u64, u32>,
    gauges: BTreeMap<String, u64>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            hists: vec![Histogram::default(); Layer::COUNT],
            ..Registry::default()
        }
    }

    /// Folds one event into every registry.
    pub(crate) fn aggregate(&mut self, layer: Layer, node: u32, dur_ns: u64, event: &Event) {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            for n in self.nodes.len()..=idx {
                self.nodes.push(NodeMetrics::new(n as u32));
            }
        }
        let nm = &mut self.nodes[idx];
        nm.layer_ns[layer.index()] += dur_ns;
        nm.layer_events[layer.index()] += 1;
        self.hists[layer.index()].record(dur_ns);
        let e = self
            .kinds
            .entry(event.kind_name())
            .or_insert((0, 0, u64::MAX, 0));
        e.0 += 1;
        e.1 += dur_ns;
        e.2 = e.2.min(dur_ns);
        e.3 = e.3.max(dur_ns);
        match *event {
            Event::Fault { page, .. } => {
                let m = self.page(page);
                m.faults += 1;
                m.nodes_mask |= 1 << node.min(63);
                match self.page_last.insert(page, node) {
                    Some(prev) if prev != node => self.page(page).handoffs += 1,
                    _ => {}
                }
            }
            Event::Fetch { page, .. } => self.page(page).fetches += 1,
            Event::Diff { page, .. } => self.page(page).diffs += 1,
            Event::Invalidate { page } => self.page(page).invals += 1,
            Event::Migrate { base } => self.page(base).migrates += 1,
            _ => {}
        }
    }

    fn page(&mut self, page: u64) -> &mut PageMetrics {
        self.pages.entry(page).or_insert(PageMetrics {
            page,
            ..PageMetrics::default()
        })
    }

    /// Raises the named gauge to at least `v`.
    pub(crate) fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        if v > *g {
            *g = v;
        }
    }

    /// Sets the named gauge.
    pub(crate) fn gauge_set(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    pub(crate) fn snapshot(&self, dropped_events: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            dropped_events,
            nodes: self.nodes.clone(),
            kinds: self
                .kinds
                .iter()
                .map(|(name, &(count, total_ns, min_ns, max_ns))| KindAgg {
                    name: (*name).to_string(),
                    count,
                    total_ns,
                    min_ns: if count == 0 { 0 } else { min_ns },
                    max_ns,
                })
                .collect(),
            hists: self.hists.clone(),
            pages: self.pages.values().copied().collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
        }
    }

    pub(crate) fn clear(&mut self) {
        *self = Registry::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn aggregate_grows_nodes_and_tracks_pages() {
        let mut r = Registry::new();
        r.aggregate(Layer::Proto, 2, 0, &Event::Fault { page: 7, write: true });
        r.aggregate(Layer::Proto, 2, 0, &Event::Diff { page: 7, bytes: 64 });
        r.aggregate(Layer::San, 0, 7_800, &Event::SanSend { to: 1, bytes: 4 });
        let s = r.snapshot(3);
        assert_eq!(s.dropped_events, 3);
        assert_eq!(s.nodes.len(), 3);
        assert_eq!(s.nodes[2].layer_events[Layer::Proto.index()], 2);
        assert_eq!(s.nodes[0].layer_ns[Layer::San.index()], 7_800);
        assert_eq!(s.pages.len(), 1);
        assert_eq!(s.pages[0].faults, 1);
        assert_eq!(s.pages[0].diffs, 1);
        assert_eq!(s.layer_total_ns(Layer::San), 7_800);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_valid() {
        let mut r = Registry::new();
        r.aggregate(Layer::Sync, 1, 500, &Event::LockWait { id: 9 });
        r.gauge_max("sync.mutex.max_waiters", 4);
        r.gauge_max("sync.mutex.max_waiters", 2);
        let a = r.snapshot(0);
        let b = r.snapshot(0);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.gauge("sync.mutex.max_waiters"), Some(4));
        crate::json::validate(&a.to_json()).expect("snapshot JSON parses");
    }
}
