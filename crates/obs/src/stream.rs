//! Bounded lock-free frame ring and the NDJSON stream grammar.
//!
//! The sampler ([`crate::series`]) pushes [`DeltaFrame`]s into a
//! [`FrameRing`] from inside the sink; an exporter (a plain OS thread in
//! the benches — wall-clock scheduling never touches simulated state)
//! pops them and appends one JSON object per line to
//! `target/artifacts/stream_<kernel>.ndjson` while the run progresses.
//!
//! # NDJSON grammar (version 1)
//!
//! ```text
//! {"type":"header","version":1,"kernel":"FFT","sample_ns":65536}
//! {"type":"frame","seq":0,"start_ns":...,"end_ns":...,"merged":0,"stall":{...},"delta":{...}}
//! ...
//! {"type":"end","sim_time_ns":...,"frames":N,"overflow_merges":M,"snapshot":{...}}
//! ```
//!
//! - every line is a complete RFC-8259 object (validated by
//!   [`crate::json`], the repo's own parser);
//! - frame `seq` values are dense from 0 (a dropped line is detectable);
//! - the `end` line embeds the final [`MetricsSnapshot`]
//!   ([`MetricsSnapshot::to_json`] shape), so a stream is
//!   *self-verifying*: folding the frames must reproduce the embedded
//!   snapshot exactly ([`Stream::verify_fold`], enforced by
//!   `cablestat series`/`check` and the benches).
//! - a stream without an `end` line is *live* (or truncated by a crash):
//!   `cablestat tail --follow` keeps reading until the end line appears.
//!
//! Sparseness: zero layer entries, empty histogram layers, and zero
//! stall buckets are omitted from frame lines; histogram buckets are
//! `[index, count]` pairs.

use std::cell::UnsafeCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::event::Layer;
use crate::json::{self, Value};
use crate::metrics::{Histogram, KindAgg, MetricsSnapshot, NodeMetrics, PageMetrics};
use crate::series::DeltaFrame;
use crate::stall::{Bucket, BUCKETS};

/// Stream grammar version written into the header line.
pub const STREAM_VERSION: u64 = 1;

struct Slot {
    seq: AtomicUsize,
    frame: UnsafeCell<Option<DeltaFrame>>,
}

/// A bounded lock-free multi-producer/multi-consumer ring of
/// [`DeltaFrame`]s (Vyukov's bounded MPMC queue). In practice the
/// producer side is the sink's recording path (serialized by the sink
/// mutex) and the consumer is one exporter thread, but the ring itself
/// assumes neither.
pub struct FrameRing {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: slot payloads are only touched by the thread that won the
// corresponding sequence ticket (the Vyukov protocol): a producer writes
// a slot only after observing `seq == pos`, a consumer reads it only
// after observing `seq == pos + 1`, and the acquire/release pairs on
// `seq` order those accesses.
unsafe impl Send for FrameRing {}
unsafe impl Sync for FrameRing {}

impl std::fmt::Debug for FrameRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameRing")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

impl FrameRing {
    /// Creates a ring holding up to `cap` frames (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                frame: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FrameRing {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Frames currently queued (racy estimate; exact when quiescent).
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Relaxed)
            .saturating_sub(self.tail.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (racy estimate; exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a frame; on a full ring the frame is handed back (the
    /// sampler then carries it into the next window).
    pub fn push(&self, frame: DeltaFrame) -> Result<(), DeltaFrame> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` grants
                        // exclusive write access to this slot until the
                        // release store below publishes it.
                        unsafe { *slot.frame.get() = Some(frame) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if seq < pos {
                return Err(frame); // full
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest frame, if any.
    pub fn pop(&self) -> Option<DeltaFrame> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expect = pos + 1;
            if seq == expect {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` grants
                        // exclusive read access to this published slot.
                        let f = unsafe { (*slot.frame.get()).take() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return f;
                    }
                    Err(p) => pos = p,
                }
            } else if seq < expect {
                return None; // empty
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains everything currently queued, in order.
    pub fn drain(&self) -> Vec<DeltaFrame> {
        let mut out = Vec::new();
        while let Some(f) = self.pop() {
            out.push(f);
        }
        out
    }
}

/// The stream's header line.
pub fn header_line(kernel: &str, sample_ns: u64) -> String {
    format!(
        "{{\"type\":\"header\",\"version\":{STREAM_VERSION},\"kernel\":\"{kernel}\",\"sample_ns\":{sample_ns}}}"
    )
}

/// One frame as a single NDJSON line (no trailing newline).
pub fn frame_line(f: &DeltaFrame) -> String {
    let mut j = String::with_capacity(256);
    let _ = write!(
        j,
        "{{\"type\":\"frame\",\"seq\":{},\"start_ns\":{},\"end_ns\":{},\"merged\":{},\"stall\":{{",
        f.seq, f.start_ns, f.end_ns, f.merged
    );
    let mut first = true;
    for b in Bucket::ALL {
        let v = f.stall_ns[b as usize];
        if v == 0 {
            continue;
        }
        if !first {
            j.push(',');
        }
        first = false;
        let _ = write!(j, "\"{}\":{}", b.name(), v);
    }
    let d = &f.delta;
    let _ = write!(j, "}},\"delta\":{{\"dropped_events\":{},\"nodes\":[", d.dropped_events);
    for (i, n) in d.nodes.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(j, "{{\"node\":{},\"ns\":{{", n.node);
        let mut first = true;
        for l in Layer::ALL {
            let v = n.layer_ns[l.index()];
            if v == 0 {
                continue;
            }
            if !first {
                j.push(',');
            }
            first = false;
            let _ = write!(j, "\"{}\":{}", l.name(), v);
        }
        j.push_str("},\"events\":{");
        let mut first = true;
        for l in Layer::ALL {
            let v = n.layer_events[l.index()];
            if v == 0 {
                continue;
            }
            if !first {
                j.push(',');
            }
            first = false;
            let _ = write!(j, "\"{}\":{}", l.name(), v);
        }
        j.push_str("}}");
    }
    j.push_str("],\"kinds\":[");
    for (i, k) in d.kinds.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(
            j,
            "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            k.name, k.count, k.total_ns, k.min_ns, k.max_ns
        );
    }
    j.push_str("],\"hists\":{");
    let mut first_h = true;
    for l in Layer::ALL {
        let h = &d.hists[l.index()];
        if h.buckets.iter().all(|&b| b == 0) {
            continue;
        }
        if !first_h {
            j.push(',');
        }
        first_h = false;
        let _ = write!(j, "\"{}\":{{\"buckets\":[", l.name());
        let mut first = true;
        for (i, &b) in h.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                j.push(',');
            }
            first = false;
            let _ = write!(j, "[{i},{b}]");
        }
        let _ = write!(
            j,
            "],\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0)
        );
    }
    j.push_str("},\"pages\":[");
    for (i, p) in d.pages.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(
            j,
            "{{\"page\":{},\"faults\":{},\"fetches\":{},\"diffs\":{},\"invals\":{},\"migrates\":{},\"mask\":{},\"handoffs\":{}}}",
            p.page, p.faults, p.fetches, p.diffs, p.invals, p.migrates, p.nodes_mask, p.handoffs
        );
    }
    j.push_str("],\"gauges\":{");
    for (i, (name, v)) in d.gauges.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(j, "\"{name}\":{v}");
    }
    j.push_str("}}}");
    j
}

/// The stream's end line, embedding the final snapshot (compacted onto
/// one line).
pub fn end_line(
    sim_time_ns: u64,
    frames: u64,
    overflow_merges: u64,
    snapshot: &MetricsSnapshot,
) -> String {
    let compact: String = snapshot
        .to_json()
        .lines()
        .map(|l| l.trim_start())
        .collect::<Vec<_>>()
        .join("");
    format!(
        "{{\"type\":\"end\",\"sim_time_ns\":{sim_time_ns},\"frames\":{frames},\"overflow_merges\":{overflow_merges},\"snapshot\":{compact}}}"
    )
}

/// A parsed stream header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// Grammar version (must be [`STREAM_VERSION`]).
    pub version: u64,
    /// Kernel / workload name the stream was cut from.
    pub kernel: String,
    /// Window width, simulated ns.
    pub sample_ns: u64,
}

/// A parsed end line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEnd {
    /// Final simulated time of the run.
    pub sim_time_ns: u64,
    /// Frame count the producer claims (must match the lines).
    pub frames: u64,
    /// Ring-overflow merges over the series' lifetime.
    pub overflow_merges: u64,
    /// The final snapshot the frames must fold back into.
    pub snapshot: MetricsSnapshot,
}

/// A fully parsed NDJSON stream.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The header line.
    pub header: StreamHeader,
    /// Every frame, in line order.
    pub frames: Vec<DeltaFrame>,
    /// The end line, if the stream is complete.
    pub end: Option<StreamEnd>,
}

impl Stream {
    /// Folds the frames and checks them against the embedded final
    /// snapshot, byte-exactly (via the canonical JSON serialization,
    /// which also absorbs the export's lossy `sharers` encoding).
    ///
    /// # Errors
    ///
    /// A message naming the first divergence, or the missing end line.
    pub fn verify_fold(&self) -> Result<(), String> {
        let end = self.end.as_ref().ok_or("stream has no end line (live or truncated)")?;
        if end.frames != self.frames.len() as u64 {
            return Err(format!(
                "end line claims {} frames, stream has {}",
                end.frames,
                self.frames.len()
            ));
        }
        let folded = crate::series::fold(self.frames.iter());
        let a = folded.to_json();
        let b = end.snapshot.to_json();
        if a != b {
            let at = a
                .bytes()
                .zip(b.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or(a.len().min(b.len()));
            return Err(format!(
                "fold of {} frames diverges from the final snapshot at byte {at}: ..{}.. vs ..{}..",
                self.frames.len(),
                &a[at.saturating_sub(20)..(at + 20).min(a.len())],
                &b[at.saturating_sub(20)..(at + 20).min(b.len())]
            ));
        }
        Ok(())
    }
}

fn need(v: Option<&Value>, what: &str) -> Result<u64, String> {
    v.and_then(|x| x.as_u64()).ok_or_else(|| format!("missing {what}"))
}

fn parse_header(v: &Value) -> Result<StreamHeader, String> {
    let version = need(v.get("version"), "header.version")?;
    if version != STREAM_VERSION {
        return Err(format!("unsupported stream version {version}"));
    }
    Ok(StreamHeader {
        version,
        kernel: v
            .get("kernel")
            .and_then(|x| x.as_str())
            .ok_or("missing header.kernel")?
            .to_string(),
        sample_ns: need(v.get("sample_ns"), "header.sample_ns")?,
    })
}

/// Rebuilds a frame from one parsed NDJSON line.
pub fn parse_frame(v: &Value) -> Result<DeltaFrame, String> {
    let mut stall = [0u64; BUCKETS];
    if let Some(obj) = v.get("stall").and_then(|x| x.as_obj()) {
        for (name, val) in obj {
            let b = Bucket::ALL
                .iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| format!("unknown stall bucket {name}"))?;
            stall[*b as usize] = val.as_u64().ok_or("stall value not a number")?;
        }
    }
    let d = v.get("delta").ok_or("frame without delta")?;
    let mut nodes = Vec::new();
    for n in d.get("nodes").and_then(|x| x.as_arr()).ok_or("missing delta.nodes")? {
        let mut row = NodeMetrics {
            node: need(n.get("node"), "node id")? as u32,
            layer_ns: [0; Layer::COUNT],
            layer_events: [0; Layer::COUNT],
        };
        for l in Layer::ALL {
            if let Some(x) = n.get("ns").and_then(|m| m.get(l.name())) {
                row.layer_ns[l.index()] = x.as_u64().ok_or("layer ns not a number")?;
            }
            if let Some(x) = n.get("events").and_then(|m| m.get(l.name())) {
                row.layer_events[l.index()] = x.as_u64().ok_or("layer events not a number")?;
            }
        }
        nodes.push(row);
    }
    let mut kinds = Vec::new();
    for k in d.get("kinds").and_then(|x| x.as_arr()).ok_or("missing delta.kinds")? {
        kinds.push(KindAgg {
            name: k
                .get("name")
                .and_then(|x| x.as_str())
                .ok_or("kind without name")?
                .to_string(),
            count: need(k.get("count"), "kind count")?,
            total_ns: need(k.get("total_ns"), "kind total_ns")?,
            min_ns: need(k.get("min_ns"), "kind min_ns")?,
            max_ns: need(k.get("max_ns"), "kind max_ns")?,
        });
    }
    let mut hists = vec![Histogram::default(); Layer::COUNT];
    if let Some(obj) = d.get("hists").and_then(|x| x.as_obj()) {
        for (lname, h) in obj {
            let l = Layer::ALL
                .iter()
                .find(|l| l.name() == lname)
                .ok_or_else(|| format!("unknown hist layer {lname}"))?;
            for pair in h.get("buckets").and_then(|x| x.as_arr()).ok_or("hist without buckets")? {
                let p = pair.as_arr().ok_or("hist bucket not a pair")?;
                if p.len() != 2 {
                    return Err("hist bucket pair malformed".into());
                }
                let idx = p[0].as_u64().ok_or("bucket index not a number")? as usize;
                if idx >= crate::metrics::HIST_BUCKETS {
                    return Err(format!("bucket index {idx} out of range"));
                }
                hists[l.index()].buckets[idx] = p[1].as_u64().ok_or("bucket count not a number")?;
            }
        }
    }
    let mut pages = Vec::new();
    for p in d.get("pages").and_then(|x| x.as_arr()).ok_or("missing delta.pages")? {
        let g = |k: &str| need(p.get(k), k);
        pages.push(PageMetrics {
            page: g("page")?,
            faults: g("faults")?,
            fetches: g("fetches")?,
            diffs: g("diffs")?,
            invals: g("invals")?,
            migrates: g("migrates")?,
            nodes_mask: g("mask")?,
            handoffs: g("handoffs")?,
        });
    }
    let mut gauges = Vec::new();
    for (name, x) in d.get("gauges").and_then(|x| x.as_obj()).ok_or("missing delta.gauges")? {
        gauges.push((name.clone(), x.as_u64().ok_or("gauge value not a number")?));
    }
    Ok(DeltaFrame {
        seq: need(v.get("seq"), "frame.seq")?,
        start_ns: need(v.get("start_ns"), "frame.start_ns")?,
        end_ns: need(v.get("end_ns"), "frame.end_ns")?,
        merged: need(v.get("merged"), "frame.merged")?,
        stall_ns: stall,
        delta: MetricsSnapshot {
            dropped_events: need(d.get("dropped_events"), "delta.dropped_events")?,
            nodes,
            kinds,
            hists,
            pages,
            gauges,
        },
    })
}

/// Parses a whole NDJSON stream, enforcing the grammar (header first,
/// dense frame seqs, monotone windows, at most one end line, nothing
/// after it).
///
/// # Errors
///
/// `line N: message` for the first offending line.
pub fn parse_stream(text: &str) -> Result<Stream, String> {
    let mut header = None;
    let mut frames: Vec<DeltaFrame> = Vec::new();
    let mut end = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let at = |msg: String| format!("line {ln}: {msg}");
        if line.trim().is_empty() {
            continue;
        }
        if end.is_some() {
            return Err(at("content after the end line".into()));
        }
        let v = json::parse(line).map_err(|e| at(e.to_string()))?;
        let ty = v
            .get("type")
            .and_then(|x| x.as_str())
            .ok_or_else(|| at("object without a type field".into()))?;
        match ty {
            "header" => {
                if header.is_some() {
                    return Err(at("duplicate header".into()));
                }
                if !frames.is_empty() {
                    return Err(at("header after frames".into()));
                }
                header = Some(parse_header(&v).map_err(at)?);
            }
            "frame" => {
                if header.is_none() {
                    return Err(at("frame before header".into()));
                }
                let f = parse_frame(&v).map_err(at)?;
                if f.seq != frames.len() as u64 {
                    return Err(at(format!(
                        "frame seq {} out of order (expected {})",
                        f.seq,
                        frames.len()
                    )));
                }
                if let Some(prev) = frames.last() {
                    if f.start_ns < prev.end_ns {
                        return Err(at(format!(
                            "frame window [{}, {}) overlaps previous end {}",
                            f.start_ns, f.end_ns, prev.end_ns
                        )));
                    }
                }
                if f.end_ns <= f.start_ns {
                    return Err(at("empty or inverted frame window".into()));
                }
                frames.push(f);
            }
            "end" => {
                if header.is_none() {
                    return Err(at("end before header".into()));
                }
                let snapshot = v
                    .get("snapshot")
                    .ok_or_else(|| at("end without snapshot".into()))
                    .and_then(|s| MetricsSnapshot::from_value(s).map_err(at))?;
                end = Some(StreamEnd {
                    sim_time_ns: need(v.get("sim_time_ns"), "end.sim_time_ns").map_err(at)?,
                    frames: need(v.get("frames"), "end.frames").map_err(at)?,
                    overflow_merges: need(v.get("overflow_merges"), "end.overflow_merges")
                        .map_err(at)?,
                    snapshot,
                });
            }
            other => return Err(at(format!("unknown line type {other:?}"))),
        }
    }
    Ok(Stream {
        header: header.ok_or("stream has no header line")?,
        frames,
        end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series;

    fn frame(seq: u64, start: u64, end: u64) -> DeltaFrame {
        let mut d = DeltaFrame {
            seq,
            start_ns: start,
            end_ns: end,
            merged: 0,
            stall_ns: [0; BUCKETS],
            delta: MetricsSnapshot {
                dropped_events: 0,
                nodes: vec![NodeMetrics {
                    node: 0,
                    layer_ns: [0; Layer::COUNT],
                    layer_events: [0; Layer::COUNT],
                }],
                kinds: vec![KindAgg {
                    name: "proto.fault".into(),
                    count: seq + 1,
                    total_ns: 10 * (seq + 1),
                    min_ns: 1,
                    max_ns: 9,
                }],
                hists: vec![Histogram::default(); Layer::COUNT],
                pages: vec![],
                gauges: vec![("g".into(), seq)],
            },
        };
        d.delta.nodes[0].layer_ns[Layer::Proto.index()] = 10;
        d.delta.nodes[0].layer_events[Layer::Proto.index()] = 1;
        d.delta.hists[Layer::Proto.index()].buckets[3] = 1;
        d.stall_ns[Bucket::PageFault as usize] = 10;
        d
    }

    #[test]
    fn ring_pushes_and_pops_fifo() {
        let r = FrameRing::with_capacity(4);
        for i in 0..4 {
            r.push(frame(i, i * 10, i * 10 + 10)).unwrap();
        }
        assert!(r.push(frame(4, 40, 50)).is_err(), "full ring hands the frame back");
        let out = r.drain();
        assert_eq!(out.len(), 4);
        assert!(out.iter().enumerate().all(|(i, f)| f.seq == i as u64));
        assert!(r.pop().is_none());
    }

    #[test]
    fn ring_survives_concurrent_producer_consumer() {
        let r = std::sync::Arc::new(FrameRing::with_capacity(8));
        let p = {
            let r = r.clone();
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                while pushed < 200 {
                    if r.push(frame(pushed, pushed, pushed + 1)).is_ok() {
                        pushed += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut seen = 0u64;
        while seen < 200 {
            if let Some(f) = r.pop() {
                assert_eq!(f.seq, seen);
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        p.join().unwrap();
    }

    #[test]
    fn ndjson_roundtrips_and_verifies() {
        let frames = vec![frame(0, 0, 100), frame(1, 100, 200)];
        let folded = series::fold(frames.iter());
        let mut text = String::new();
        text.push_str(&header_line("FFT", 100));
        text.push('\n');
        for f in &frames {
            text.push_str(&frame_line(f));
            text.push('\n');
        }
        text.push_str(&end_line(200, 2, 0, &folded));
        text.push('\n');
        for line in text.lines() {
            json::validate(line).expect("every line is valid JSON");
        }
        let s = parse_stream(&text).unwrap();
        assert_eq!(s.header.kernel, "FFT");
        assert_eq!(s.frames.len(), 2);
        assert_eq!(s.frames, frames);
        s.verify_fold().unwrap();
    }

    #[test]
    fn grammar_violations_are_line_addressed() {
        let bad = format!("{}\n{}\n", header_line("X", 10), header_line("X", 10));
        assert!(parse_stream(&bad).unwrap_err().starts_with("line 2:"));
        let noheader = frame_line(&frame(0, 0, 10));
        assert!(parse_stream(&noheader).unwrap_err().contains("frame before header"));
        let mut skipped = format!("{}\n{}\n", header_line("X", 10), frame_line(&frame(1, 0, 10)));
        assert!(parse_stream(&skipped).unwrap_err().contains("out of order"));
        skipped = format!("{}\nnot json\n", header_line("X", 10));
        assert!(parse_stream(&skipped).unwrap_err().starts_with("line 2:"));
    }
}
