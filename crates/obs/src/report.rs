//! The "paper-table reporter": renders Table-3-style latency rows and
//! Fig-5/6-style per-node time decompositions from a [`MetricsSnapshot`].

use std::fmt::Write;

use crate::event::Layer;
use crate::metrics::MetricsSnapshot;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the latency-breakdown table (one row per event kind: count,
/// avg/min/max simulated latency — the shape of the paper's Table 3).
pub fn latency_table(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "event", "count", "avg", "min", "max"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for k in &s.kinds {
        let avg = if k.count > 0 { k.total_ns / k.count } else { 0 };
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>10} {:>10}",
            k.name,
            k.count,
            fmt_ns(avg),
            fmt_ns(k.min_ns),
            fmt_ns(k.max_ns)
        );
    }
    if s.dropped_events > 0 {
        let _ = writeln!(out, "(event buffer dropped {} records)", s.dropped_events);
    }
    out
}

/// Renders the per-node per-layer time decomposition (the shape of the
/// paper's Fig. 5/6 phase breakdowns). Layer times are inclusive of
/// nested lower-layer work.
pub fn layer_breakdown(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<8}", "node");
    for l in Layer::ALL {
        let _ = write!(out, " {:>12}", l.name());
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(8 + 13 * Layer::COUNT));
    for n in &s.nodes {
        let _ = write!(out, "n{:<7}", n.node);
        for l in Layer::ALL {
            let _ = write!(out, " {:>12}", fmt_ns(n.layer_ns[l.index()]));
        }
        out.push('\n');
    }
    let _ = write!(out, "{:<8}", "total");
    for l in Layer::ALL {
        let _ = write!(out, " {:>12}", fmt_ns(s.layer_total_ns(l)));
    }
    out.push('\n');
    out
}

/// Renders the busiest pages ("why did this page bounce?"), most active
/// first, at most `top` rows.
pub fn hot_pages(s: &MetricsSnapshot, top: usize) -> String {
    let mut pages = s.pages.clone();
    pages.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.faults + p.fetches + p.diffs + p.invals + p.migrates),
            p.page,
        )
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}",
        "page", "faults", "fetches", "diffs", "invals", "migrates", "sharers", "handoffs"
    );
    let _ = writeln!(out, "{}", "-".repeat(75));
    for p in pages.iter().take(top) {
        let _ = writeln!(
            out,
            "p{:<9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}",
            p.page,
            p.faults,
            p.fetches,
            p.diffs,
            p.invals,
            p.migrates,
            p.sharers(),
            p.handoffs
        );
    }
    out
}

/// Renders interpolated latency percentiles per layer (from the log2
/// histograms; estimates, exact to the bucket).
pub fn percentile_table(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "layer", "events", "p50", "p95", "p99"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for l in Layer::ALL {
        let h = &s.hists[l.index()];
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10} {:>10}",
            l.name(),
            h.count(),
            fmt_ns(h.percentile(50.0)),
            fmt_ns(h.percentile(95.0)),
            fmt_ns(h.percentile(99.0))
        );
    }
    out
}

/// Renders the page-sharing table (folds the snapshot + events through
/// [`crate::sharing::analyze`]).
pub fn sharing_table(title: &str, s: &MetricsSnapshot, events: &[crate::EventRecord]) -> String {
    crate::sharing::analyze(s, events).render(title, 10)
}

/// Renders the named gauges (sync high-water marks, `engine.*` scheduling
/// telemetry published by `SvmSystem::publish_engine_telemetry`). Empty
/// string when the snapshot carries no gauges.
pub fn gauge_table(s: &MetricsSnapshot) -> String {
    if s.gauges.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:<32} {:>14}", "gauge", "value");
    let _ = writeln!(out, "{}", "-".repeat(47));
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "{:<32} {:>14}", name, v);
    }
    out
}

/// Renders windowed series rows (one line per [`crate::series`] frame):
/// protocol counter deltas, the dominant stall buckets, and the window's
/// SAN latency percentiles. The terminal shape of `cablestat series` and
/// `cablestat tail`.
pub fn window_table(rows: &[crate::series::WindowRow]) -> String {
    use crate::stall::Bucket;
    let mut out = String::new();
    let any_svc = rows.iter().any(|r| r.svc > 0);
    // Migration column only when a migration policy actually fired, so
    // policy-off tables render exactly as before.
    let any_migr = rows.iter().any(|r| r.migrates > 0);
    let _ = writeln!(
        out,
        "{:<26} {:>7} {:>6} {:>6} {:>6} {:>6}{}  {:<34} {:>8} {:>8} {:>8}{}",
        "window",
        "events",
        "flt",
        "ftch",
        "diff",
        "inv",
        if any_migr {
            format!(" {:>5}", "migr")
        } else {
            String::new()
        },
        "stall mix",
        "san p50",
        "p95",
        "p99",
        if any_svc {
            format!(" {:>6} {:>8} {:>8} {:>8}", "svc", "svc p50", "p95", "p99")
        } else {
            String::new()
        }
    );
    let width = 126 + if any_svc { 34 } else { 0 } + if any_migr { 6 } else { 0 };
    let _ = writeln!(out, "{}", "-".repeat(width));
    for r in rows {
        let total: u64 = r.stall_ns.iter().sum();
        let mut mix: Vec<(u64, Bucket)> = Bucket::ALL
            .iter()
            .map(|&b| (r.stall_ns[b as usize], b))
            .filter(|&(v, _)| v > 0)
            .collect();
        mix.sort_by_key(|&(v, b)| (std::cmp::Reverse(v), b as usize));
        let mix_s = if total == 0 {
            "-".to_string()
        } else {
            mix.iter()
                .take(3)
                .map(|&(v, b)| format!("{} {:.0}%", b.name(), 100.0 * v as f64 / total as f64))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let merged = if r.merged > 0 {
            format!(" (+{} merged)", r.merged)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:<26} {:>7} {:>6} {:>6} {:>6} {:>6}{}  {:<34} {:>8} {:>8} {:>8}{}",
            format!("[{}..{}){merged}", fmt_ns(r.start_ns), fmt_ns(r.end_ns)),
            r.events,
            r.faults,
            r.fetches,
            r.diffs,
            r.invals,
            if any_migr {
                format!(" {:>5}", r.migrates)
            } else {
                String::new()
            },
            mix_s,
            fmt_ns(r.san_p[0]),
            fmt_ns(r.san_p[1]),
            fmt_ns(r.san_p[2]),
            if any_svc {
                format!(
                    " {:>6} {:>8} {:>8} {:>8}",
                    r.svc,
                    fmt_ns(r.svc_p[0]),
                    fmt_ns(r.svc_p[1]),
                    fmt_ns(r.svc_p[2])
                )
            } else {
                String::new()
            }
        );
    }
    out
}

/// The full report: latency table + percentiles + layer breakdown + hot
/// pages + gauges (engine telemetry and sync high-water marks).
pub fn full_report(title: &str, s: &MetricsSnapshot) -> String {
    let mut rep = format!(
        "=== {title}: latency breakdown (Table-3 style) ===\n{}\n=== {title}: latency percentiles (interpolated, per layer) ===\n{}\n=== {title}: per-node layer decomposition (Fig-5/6 style) ===\n{}\n=== {title}: hottest pages ===\n{}",
        latency_table(s),
        percentile_table(s),
        layer_breakdown(s),
        hot_pages(s, 10)
    );
    let gauges = gauge_table(s);
    if !gauges.is_empty() {
        rep.push_str(&format!("\n=== {title}: gauges (engine + sync) ===\n{gauges}"));
    }
    rep
}

/// [`full_report`] plus the page-sharing ranking (which needs the event
/// buffer for diff-byte volumes and fetch-wait attribution).
pub fn full_report_with_events(
    title: &str,
    s: &MetricsSnapshot,
    events: &[crate::EventRecord],
) -> String {
    let mut rep = full_report(title, s);
    rep.push('\n');
    rep.push_str(&sharing_table(title, s, events));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::metrics::Registry;

    #[test]
    fn report_renders_all_sections() {
        let mut r = Registry::new();
        r.aggregate(Layer::San, 0, 7_800, &Event::SanSend { to: 1, bytes: 4 });
        r.aggregate(Layer::Proto, 1, 0, &Event::Fault { page: 3, write: false });
        r.aggregate(Layer::Sync, 1, 40_000, &Event::LockWait { id: 1 });
        let s = r.snapshot(2);
        let rep = full_report("TEST", &s);
        assert!(rep.contains("san.send"));
        assert!(rep.contains("proto.fault"));
        assert!(rep.contains("sync.lock"));
        assert!(rep.contains("dropped 2"));
        assert!(rep.contains("p3"));
        assert!(rep.contains("layer decomposition"));
        assert!(rep.contains("latency percentiles"));
        assert!(rep.contains("sharers"));
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        use crate::metrics::Histogram;
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(1_000); // bucket 9: [512, 1024)
        }
        let p50 = h.percentile(50.0);
        assert!((512..1024).contains(&p50), "p50={p50}");
        assert!(h.percentile(99.0) >= p50);
        assert_eq!(Histogram::default().percentile(50.0), 0);
    }
}
