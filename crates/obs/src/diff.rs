//! Differential run analysis: structured deltas between two snapshot JSONs.
//!
//! [`diff`] walks two parsed [`crate::json::Value`] trees (any of the
//! `BENCH_*.json` artifacts, a [`crate::MetricsSnapshot::to_json`] dump, a
//! critpath report, or a stall profile) in lock-step and emits one
//! [`DeltaRow`] per *changed numeric leaf*, plus added/removed paths and
//! changed string/bool labels. Three properties make it usable as a
//! regression gate:
//!
//! - **`diff(a, a)` is empty.** Rows exist only where the values differ.
//! - **Deterministic.** The walk order is a pure function of the inputs;
//!   two runs produce byte-identical reports.
//! - **Monotone thresholding.** A row is `significant` iff
//!   `|delta| > thresholds.abs` *and* `|rel%| > thresholds.rel_pct`;
//!   raising either threshold can only shrink the significant set.
//!
//! Each row also carries a *direction*: metric names classify as
//! higher-is-worse (latencies, fault/message counts, wait time),
//! lower-is-worse (speedups, hit rates, admissibility headroom), or
//! neutral (configuration echoes and wall-clock times, which are
//! host-dependent and must never gate). A `regression` is a significant
//! delta in the worse direction — what `scripts/perfgate.sh` fails on.
//!
//! Arrays of objects are matched by a composite identity key (kernel,
//! mode, node, page, toggle flags, …) rather than by index, so a
//! reordered or grown artifact diffs structurally instead of pairing
//! unrelated rows.

use std::fmt;
use std::fmt::Write as _;

use crate::json::Value;

/// Significance thresholds. A delta is significant when `|delta| >
/// abs` **and** `|rel%| > rel_pct` (a vanished/appeared value counts as
/// infinite relative change). The defaults flag every non-zero delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Absolute magnitude floor (same unit as the metric).
    pub abs: f64,
    /// Relative magnitude floor, in percent of the before-value.
    pub rel_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { abs: 0.0, rel_pct: 0.0 }
    }
}

/// Which way a metric hurts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Growth is a regression (latency, faults, messages, wait time).
    HigherWorse,
    /// Shrinkage is a regression (speedup, hit rate, headroom).
    LowerWorse,
    /// Never gates (config echoes, wall-clock host time).
    Neutral,
}

/// Classifies a leaf key's direction. Wall-clock keys are neutral first
/// (host-dependent), then good-when-big names, then bad-when-big names;
/// anything unrecognized is neutral so config echoes can't fake a
/// regression.
pub fn direction_for(leaf: &str) -> Direction {
    let k = leaf.to_ascii_lowercase();
    if k.contains("wall") {
        return Direction::Neutral;
    }
    const LOWER_WORSE: &[&str] = &["speedup", "hit", "completion", "admissible", "mbs"];
    if LOWER_WORSE.iter().any(|w| k.contains(w)) {
        return Direction::LowerWorse;
    }
    const HIGHER_WORSE: &[&str] = &[
        "_ns", "p50", "p95", "p99", "fault", "fetch", "diff", "inval", "msg", "bytes",
        "dropped", "realloc", "wasted", "wait", "stall", "count", "retrans", "latency",
        "compute", "misplaced",
    ];
    if HIGHER_WORSE.iter().any(|w| k.contains(w)) {
        return Direction::HigherWorse;
    }
    Direction::Neutral
}

/// Coarse report section a path belongs to, for grouping in the output.
pub fn section_for(path: &str) -> &'static str {
    let p = path.to_ascii_lowercase();
    if p.contains("stall") || p.contains("slices") {
        "stall"
    } else if p.contains("blame") || p.contains("critpath") || p.contains("by_") {
        "critpath"
    } else if p.contains("hist") || p.contains("p50") || p.contains("p95") || p.contains("p99") {
        "hists"
    } else if p.contains("layer") {
        "layers"
    } else if p.contains("kind") {
        "kinds"
    } else if p.contains("page") {
        "pages"
    } else if p.contains("gauge") || p.contains("engine") {
        "gauges"
    } else if p.contains("node") {
        "nodes"
    } else {
        "other"
    }
}

/// One changed numeric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Dotted path of the leaf, array elements keyed by identity
    /// (e.g. `kernels[kernel=FFT].snapshot.nodes[node=3].layer_ns.sync`).
    pub path: String,
    /// Coarse section ([`section_for`]).
    pub section: &'static str,
    /// Value in the first (baseline) input.
    pub before: f64,
    /// Value in the second (candidate) input.
    pub after: f64,
    /// `after - before`.
    pub delta: f64,
    /// `100 * delta / |before|`; infinite when `before == 0`.
    pub rel_pct: f64,
    /// Direction of the leaf key.
    pub direction: Direction,
    /// Whether the delta clears both thresholds.
    pub significant: bool,
    /// Significant *and* in the worse direction.
    pub regression: bool,
}

/// The structured delta between two JSON trees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Diff {
    /// Changed numeric leaves, in walk order (deterministic).
    pub rows: Vec<DeltaRow>,
    /// Changed string/bool leaves: `(path, before, after)`.
    pub labels: Vec<(String, String, String)>,
    /// Paths present only in the second input.
    pub added: Vec<String>,
    /// Paths present only in the first input.
    pub removed: Vec<String>,
}

/// Keys that identify an object inside an array, in priority order. The
/// composite of every present key forms the element's identity.
const ID_KEYS: &[&str] = &[
    "kernel", "name", "program", "mode", "section", "node", "page", "kind", "src_node",
    "dst_node", "obj", "nodes", "procs", "m", "keys", "prefetch", "batch_diffs",
    "lock_forwarding", "id", "track", "bucket", "start_ns", "level",
];

fn scalar_str(v: &Value) -> String {
    match v {
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
        _ => "?".to_string(),
    }
}

fn id_of(obj: &[(String, Value)]) -> Option<String> {
    let mut parts = Vec::new();
    for k in ID_KEYS {
        if let Some((_, v)) = obj.iter().find(|(kk, _)| kk == k) {
            if !matches!(v, Value::Arr(_) | Value::Obj(_)) {
                parts.push(format!("{k}={}", scalar_str(v)));
            }
        }
    }
    (!parts.is_empty()).then(|| parts.join(","))
}

fn walk(path: &str, a: &Value, b: &Value, th: &Thresholds, out: &mut Diff) {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => {
            if x != y {
                let leaf = path.rsplit('.').next().unwrap_or(path);
                let delta = y - x;
                let rel_pct = if *x != 0.0 {
                    100.0 * delta / x.abs()
                } else {
                    f64::INFINITY * delta.signum()
                };
                let direction = direction_for(leaf);
                let significant = delta.abs() > th.abs && rel_pct.abs() > th.rel_pct;
                let regression = significant
                    && match direction {
                        Direction::HigherWorse => delta > 0.0,
                        Direction::LowerWorse => delta < 0.0,
                        Direction::Neutral => false,
                    };
                out.rows.push(DeltaRow {
                    path: path.to_string(),
                    section: section_for(path),
                    before: *x,
                    after: *y,
                    delta,
                    rel_pct,
                    direction,
                    significant,
                    regression,
                });
            }
        }
        (Value::Obj(ka), Value::Obj(kb)) => {
            for (k, va) in ka {
                let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                match kb.iter().find(|(kk, _)| kk == k) {
                    Some((_, vb)) => walk(&sub, va, vb, th, out),
                    None => out.removed.push(sub),
                }
            }
            for (k, _) in kb {
                if !ka.iter().any(|(kk, _)| kk == k) {
                    let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    out.added.push(sub);
                }
            }
        }
        (Value::Arr(xa), Value::Arr(xb)) => {
            // Match object elements by identity when every element on both
            // sides has a unique id; otherwise pair by index.
            let ids_a: Vec<Option<String>> = xa
                .iter()
                .map(|v| v.as_obj().and_then(id_of))
                .collect();
            let ids_b: Vec<Option<String>> = xb
                .iter()
                .map(|v| v.as_obj().and_then(id_of))
                .collect();
            let unique = |ids: &[Option<String>]| {
                let mut seen = std::collections::BTreeSet::new();
                ids.iter().all(|i| match i {
                    Some(s) => seen.insert(s.clone()),
                    None => false,
                })
            };
            if !xa.is_empty() && !xb.is_empty() && unique(&ids_a) && unique(&ids_b) {
                for (va, ida) in xa.iter().zip(&ids_a) {
                    let ida = ida.as_ref().unwrap();
                    let sub = format!("{path}[{ida}]");
                    match ids_b.iter().position(|i| i.as_ref() == Some(ida)) {
                        Some(j) => walk(&sub, va, &xb[j], th, out),
                        None => out.removed.push(sub),
                    }
                }
                for idb in ids_b.iter().flatten() {
                    if !ids_a.iter().any(|i| i.as_ref() == Some(idb)) {
                        out.added.push(format!("{path}[{idb}]"));
                    }
                }
            } else {
                let n = xa.len().min(xb.len());
                for i in 0..n {
                    walk(&format!("{path}[{i}]"), &xa[i], &xb[i], th, out);
                }
                for i in n..xa.len() {
                    out.removed.push(format!("{path}[{i}]"));
                }
                for i in n..xb.len() {
                    out.added.push(format!("{path}[{i}]"));
                }
            }
        }
        (Value::Str(x), Value::Str(y)) => {
            if x != y {
                out.labels.push((path.to_string(), x.clone(), y.clone()));
            }
        }
        (Value::Bool(x), Value::Bool(y)) => {
            if x != y {
                out.labels
                    .push((path.to_string(), x.to_string(), y.to_string()));
            }
        }
        (Value::Null, Value::Null) => {}
        _ => {
            // Type changed — report as remove+add so nothing is silent.
            out.removed.push(path.to_string());
            out.added.push(path.to_string());
        }
    }
}

/// Diffs two parsed JSON trees. See the module docs for the guarantees.
pub fn diff(a: &Value, b: &Value, th: &Thresholds) -> Diff {
    let mut out = Diff::default();
    walk("", a, b, th, &mut out);
    out
}

impl Diff {
    /// True when the two inputs were identical.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
            && self.labels.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
    }

    /// The significant rows.
    pub fn significant(&self) -> impl Iterator<Item = &DeltaRow> {
        self.rows.iter().filter(|r| r.significant)
    }

    /// The regression rows (significant, worse direction).
    pub fn regressions(&self) -> impl Iterator<Item = &DeltaRow> {
        self.rows.iter().filter(|r| r.regression)
    }

    /// Renders the delta report. With `all` false only significant rows
    /// print; regressions are marked `!!`.
    pub fn render(&self, title: &str, all: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== diff: {title} ===");
        if self.is_empty() {
            let _ = writeln!(out, "(identical)");
            return out;
        }
        let shown: Vec<&DeltaRow> =
            self.rows.iter().filter(|r| all || r.significant).collect();
        let _ = writeln!(
            out,
            "{:<9} {:<58} {:>14} {:>14} {:>10}",
            "", "path [section]", "before", "after", "delta%"
        );
        let _ = writeln!(out, "{}", "-".repeat(108));
        for r in &shown {
            let mark = if r.regression {
                "!!"
            } else if r.significant {
                match r.direction {
                    Direction::Neutral => "--",
                    _ => "ok",
                }
            } else {
                "  "
            };
            let rel = if r.rel_pct.is_finite() {
                format!("{:+.1}%", r.rel_pct)
            } else {
                "new".to_string()
            };
            let _ = writeln!(
                out,
                "{:<9} {:<58} {:>14} {:>14} {:>10}",
                mark,
                format!("{} [{}]", r.path, r.section),
                fmt_f64(r.before),
                fmt_f64(r.after),
                rel
            );
        }
        for (p, x, y) in &self.labels {
            let _ = writeln!(out, "~~        {p}: \"{x}\" -> \"{y}\"");
        }
        for p in &self.removed {
            let _ = writeln!(out, "-         {p}");
        }
        for p in &self.added {
            let _ = writeln!(out, "+         {p}");
        }
        let regs = self.regressions().count();
        let _ = writeln!(
            out,
            "{} changed, {} significant, {} regression(s), +{} added, -{} removed",
            self.rows.len(),
            self.significant().count(),
            regs,
            self.added.len(),
            self.removed.len()
        );
        out
    }

    /// Deterministic JSON of the delta report.
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(1024);
        j.push_str("{\n  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let rel = if r.rel_pct.is_finite() {
                format!("{:.4}", r.rel_pct)
            } else {
                "null".to_string()
            };
            let _ = write!(
                j,
                "\n    {{\"path\": \"{}\", \"section\": \"{}\", \"before\": {}, \"after\": {}, \
                 \"delta\": {}, \"rel_pct\": {}, \"significant\": {}, \"regression\": {}}}",
                escape(&r.path),
                r.section,
                fmt_f64(r.before),
                fmt_f64(r.after),
                fmt_f64(r.delta),
                rel,
                r.significant,
                r.regression
            );
        }
        j.push_str("\n  ],\n  \"labels\": [");
        for (i, (p, x, y)) in self.labels.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"path\": \"{}\", \"before\": \"{}\", \"after\": \"{}\"}}",
                escape(p),
                escape(x),
                escape(y)
            );
        }
        let list = |j: &mut String, name: &str, items: &[String]| {
            let _ = write!(j, "\n  ],\n  \"{name}\": [");
            for (i, p) in items.iter().enumerate() {
                if i > 0 {
                    j.push(',');
                }
                let _ = write!(j, "\n    \"{}\"", escape(p));
            }
        };
        list(&mut j, "added", &self.added);
        list(&mut j, "removed", &self.removed);
        j.push_str("\n  ]\n}\n");
        j
    }
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render("", false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn diff_of_identical_is_empty() {
        let v = parse(r#"{"a": 1, "b": {"c": [1, 2, 3]}, "s": "x"}"#).unwrap();
        let d = diff(&v, &v, &Thresholds::default());
        assert!(d.is_empty());
        assert!(d.render("t", true).contains("identical"));
    }

    #[test]
    fn numeric_delta_direction_and_significance() {
        let a = parse(r#"{"total_ns": 100, "speedup": 2.0, "wall_ms": 5.0, "procs": 8}"#).unwrap();
        let b = parse(r#"{"total_ns": 150, "speedup": 1.0, "wall_ms": 9.0, "procs": 8}"#).unwrap();
        let d = diff(&a, &b, &Thresholds::default());
        assert_eq!(d.rows.len(), 3);
        let by_path = |p: &str| d.rows.iter().find(|r| r.path == p).unwrap();
        assert!(by_path("total_ns").regression); // higher-worse, grew
        assert!(by_path("speedup").regression); // lower-worse, shrank
        assert!(!by_path("wall_ms").regression); // neutral never gates
        // Thresholding is monotone: a 60% rel floor keeps only the speedup.
        let d2 = diff(&a, &b, &Thresholds { abs: 0.0, rel_pct: 49.0 });
        let sig: Vec<_> = d2.significant().map(|r| r.path.as_str()).collect();
        assert_eq!(sig, vec!["total_ns", "speedup", "wall_ms"]);
        let d3 = diff(&a, &b, &Thresholds { abs: 0.0, rel_pct: 60.0 });
        let sig3: Vec<_> = d3.significant().map(|r| r.path.as_str()).collect();
        assert_eq!(sig3, vec!["wall_ms"]); // 80% growth; others below 60%
    }

    #[test]
    fn arrays_match_by_identity_key() {
        let a = parse(r#"{"kernels": [{"kernel": "FFT", "faults": 10}, {"kernel": "RADIX", "faults": 5}]}"#)
            .unwrap();
        let b = parse(r#"{"kernels": [{"kernel": "RADIX", "faults": 5}, {"kernel": "FFT", "faults": 12}, {"kernel": "LU", "faults": 1}]}"#)
            .unwrap();
        let d = diff(&a, &b, &Thresholds::default());
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].path, "kernels[kernel=FFT].faults");
        assert_eq!(d.rows[0].delta, 2.0);
        assert!(d.rows[0].regression);
        assert_eq!(d.added, vec!["kernels[kernel=LU]".to_string()]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn deterministic_and_json_valid() {
        let a = parse(r#"{"x": [1, 2], "mode": "base", "ok": true}"#).unwrap();
        let b = parse(r#"{"x": [1, 3, 4], "mode": "cables", "ok": false}"#).unwrap();
        let d1 = diff(&a, &b, &Thresholds::default());
        let d2 = diff(&a, &b, &Thresholds::default());
        assert_eq!(d1, d2);
        assert_eq!(d1.to_json(), d2.to_json());
        crate::json::validate(&d1.to_json()).expect("diff JSON parses");
        assert_eq!(d1.labels.len(), 2);
        assert_eq!(d1.added, vec!["x[2]".to_string()]);
    }
}
