//! Per-thread stall profiler: exact time accounting over the span stream.
//!
//! [`analyze`] partitions every simulated thread's lifetime — the interval
//! from its first to its last recorded event — into nine disjoint buckets:
//!
//! | bucket            | source spans                                     |
//! |-------------------|--------------------------------------------------|
//! | `compute`         | time covered by no classified span               |
//! | `page_fault`      | `proto.fault_handling`                           |
//! | `prefetch_masked` | `proto.prefetch_masked` (nested in fault spans)  |
//! | `mutex_wait`      | `sync.lock`, `rt.mutex_wait`                     |
//! | `cond_wait`       | `rt.cond_wait`                                   |
//! | `barrier_wait`    | `sync.barrier`, `rt.barrier_wait`                |
//! | `rwlock_wait`     | `rt.rwlock_wait`                                 |
//! | `join_wait`       | `rt.thread_join`                                 |
//! | `msg_latency`     | self-lane `page_fetch`/`batch_fetch`/`batch_diff` edges |
//!
//! Spans on one lane nest (they come from one thread's call stack), so the
//! partition uses the same innermost-wins flattening as [`crate::critpath`]:
//! a `prefetch_masked` span inside a fault span claims its interval from
//! `page_fault`, and the wire time reported by a self-lane fetch edge claims
//! its interval from whatever span surrounds it. Whatever no classified span
//! covers is `compute`. The buckets therefore sum to the lifetime *exactly*
//! — the invariant `tests/stall_diff.rs` proptests.
//!
//! Beyond whole-run totals the profile carries a time-sliced series
//! (configurable `slice_ns`, cluster-wide per slice) built from the same
//! segments, so slice sums equal totals by construction, and a
//! collapsed-stack export (`node;thread;bucket value`) that standard
//! flamegraph tooling renders directly.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{EdgeKind, Event, EventRecord, NIC_TRACK};

/// The stall buckets, in display order. `Compute` is the residue bucket;
/// the other eight come from classified spans. Declaration order doubles
/// as the flattening tiebreak: for identical intervals the higher-indexed
/// bucket is treated as innermost (`msg_latency` beats everything,
/// `prefetch_masked` beats `page_fault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Bucket {
    /// Time covered by no classified span.
    Compute = 0,
    /// Page-fault handling (`proto.fault_handling`).
    PageFault = 1,
    /// Fault satisfied from an already-prefetched copy.
    PrefetchMasked = 2,
    /// Mutex/lock acquisition wait (`sync.lock`, `rt.mutex_wait`).
    MutexWait = 3,
    /// Condition-variable wait (`rt.cond_wait`).
    CondWait = 4,
    /// Barrier wait (`sync.barrier`, `rt.barrier_wait`).
    BarrierWait = 5,
    /// Reader-writer lock wait (`rt.rwlock_wait`).
    RwWait = 6,
    /// `thread_join` wait (`rt.thread_join`).
    JoinWait = 7,
    /// Wire time of page/batch movement, from self-lane causal edges.
    MsgLatency = 8,
}

/// Number of buckets (length of [`Bucket::ALL`]).
pub const BUCKETS: usize = 9;

impl Bucket {
    /// Every bucket, in display order.
    pub const ALL: [Bucket; BUCKETS] = [
        Bucket::Compute,
        Bucket::PageFault,
        Bucket::PrefetchMasked,
        Bucket::MutexWait,
        Bucket::CondWait,
        Bucket::BarrierWait,
        Bucket::RwWait,
        Bucket::JoinWait,
        Bucket::MsgLatency,
    ];

    /// Stable snake_case name (used in JSON, collapsed stacks, tables).
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::PageFault => "page_fault",
            Bucket::PrefetchMasked => "prefetch_masked",
            Bucket::MutexWait => "mutex_wait",
            Bucket::CondWait => "cond_wait",
            Bucket::BarrierWait => "barrier_wait",
            Bucket::RwWait => "rwlock_wait",
            Bucket::JoinWait => "join_wait",
            Bucket::MsgLatency => "msg_latency",
        }
    }

    /// Short column header for the paper-style table.
    fn header(self) -> &'static str {
        match self {
            Bucket::Compute => "comp",
            Bucket::PageFault => "pf",
            Bucket::PrefetchMasked => "pfm",
            Bucket::MutexWait => "mtx",
            Bucket::CondWait => "cond",
            Bucket::BarrierWait => "barr",
            Bucket::RwWait => "rw",
            Bucket::JoinWait => "join",
            Bucket::MsgLatency => "msg",
        }
    }
}

/// Maps a span kind name to its stall bucket (`None` = unclassified; the
/// interval stays wherever the surrounding spans put it).
pub fn bucket_for_kind(kind: &str) -> Option<Bucket> {
    Some(match kind {
        "proto.fault_handling" => Bucket::PageFault,
        "proto.prefetch_masked" => Bucket::PrefetchMasked,
        "sync.lock" | "rt.mutex_wait" => Bucket::MutexWait,
        "rt.cond_wait" => Bucket::CondWait,
        "sync.barrier" | "rt.barrier_wait" => Bucket::BarrierWait,
        "rt.rwlock_wait" => Bucket::RwWait,
        "rt.thread_join" => Bucket::JoinWait,
        _ => return None,
    })
}

/// Why [`analyze`] refused to produce a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallError {
    /// The sink buffer overflowed: `n` records were dropped, so lifetimes
    /// and bucket coverage would be silently wrong. Raise the capacity
    /// (`ObsSink::with_capacity` / `CABLES_OBS_CAP`) and rerun.
    DroppedEvents(u64),
    /// No thread-lane events exist to profile.
    NoThreads,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallError::DroppedEvents(n) => write!(
                f,
                "stall profiling refused: the event buffer dropped {n} record(s), so \
                 per-thread accounting would be incomplete; raise the obs buffer \
                 capacity (ObsSink::with_capacity / CABLES_OBS_CAP) and rerun"
            ),
            StallError::NoThreads => {
                write!(f, "stall profiling needs at least one thread-lane event")
            }
        }
    }
}

impl std::error::Error for StallError {}

/// One thread's exact lifetime partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStall {
    /// Node the thread ran on.
    pub node: u32,
    /// The thread's track id (its `Tid`).
    pub track: u64,
    /// First recorded event, ns.
    pub start_ns: u64,
    /// Last recorded event end, ns.
    pub end_ns: u64,
    /// Nanoseconds per bucket, indexed by `Bucket as usize`. Sums to
    /// `end_ns - start_ns` exactly.
    pub buckets: [u64; BUCKETS],
}

impl ThreadStall {
    /// The thread's recorded lifetime in nanoseconds.
    pub fn lifetime_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One interval of the cluster-wide time-sliced series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Slice start, ns (slices are `slice_ns` wide, anchored at the
    /// earliest thread start).
    pub start_ns: u64,
    /// Nanoseconds per bucket summed over every thread alive in the slice.
    pub buckets: [u64; BUCKETS],
}

/// The per-thread stall profile of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallProfile {
    /// The slice width used for `slices` (0 = series disabled).
    pub slice_ns: u64,
    /// One row per thread lane, ordered by `(node, track)`.
    pub threads: Vec<ThreadStall>,
    /// Cluster-wide interval series; empty when `slice_ns == 0`. Bucket
    /// sums over all slices equal the sums over `threads` exactly.
    pub slices: Vec<Slice>,
}

/// A disjoint, bucket-labelled piece of one lane's lifetime.
type Seg = (u64, u64, Bucket);

/// Flattens classified intervals innermost-wins (critpath's algorithm,
/// with the bucket index as the deterministic tiebreak for identical
/// intervals), then fills the gaps inside `[start, end]` with `Compute`.
/// The result is a disjoint cover of the whole lifetime.
fn partition_lane(mut spans: Vec<(u64, u64, Bucket)>, start: u64, end: u64) -> Vec<Seg> {
    spans.sort_by_key(|&(s, e, b)| (s, std::cmp::Reverse(e), b as usize));
    let mut flat: Vec<Seg> = Vec::with_capacity(spans.len());
    let mut stack: Vec<(u64, Bucket)> = Vec::new();
    let mut pos = 0u64;
    let emit = |out: &mut Vec<Seg>, s: u64, e: u64, b: Bucket| {
        if e > s {
            out.push((s, e, b));
        }
    };
    for (s, e, b) in spans {
        while let Some(&(top_end, tb)) = stack.last() {
            if top_end > s {
                break;
            }
            emit(&mut flat, pos, top_end, tb);
            pos = pos.max(top_end);
            stack.pop();
        }
        if let Some(&(_, tb)) = stack.last() {
            emit(&mut flat, pos, s, tb);
        }
        pos = pos.max(s);
        if e > pos {
            stack.push((e, b));
        }
    }
    while let Some((top_end, tb)) = stack.pop() {
        emit(&mut flat, pos, top_end, tb);
        pos = pos.max(top_end);
    }

    // Clip to the lifetime and interleave Compute gaps.
    let mut out: Vec<Seg> = Vec::with_capacity(flat.len() * 2 + 1);
    let mut cur = start;
    for (s, e, b) in flat {
        let s = s.max(start).min(end);
        let e = e.max(start).min(end);
        if e <= s {
            continue;
        }
        if s > cur {
            out.push((cur, s, Bucket::Compute));
        }
        out.push((s, e, b));
        cur = cur.max(e);
    }
    if end > cur {
        out.push((cur, end, Bucket::Compute));
    }
    out
}

/// Builds the per-thread stall profile from a drained (or cloned) sink
/// buffer.
///
/// `dropped` is `ObsSink::dropped_events()` — non-zero is refused because
/// a clipped buffer would silently shrink lifetimes and bucket coverage.
/// `slice_ns` > 0 additionally builds the cluster-wide interval series.
///
/// # Errors
///
/// [`StallError::DroppedEvents`] on buffer overflow,
/// [`StallError::NoThreads`] when no thread-lane events exist.
pub fn analyze(
    events: &[EventRecord],
    dropped: u64,
    slice_ns: u64,
) -> Result<StallProfile, StallError> {
    if dropped > 0 {
        return Err(StallError::DroppedEvents(dropped));
    }

    type Lane = (u32, u64);
    let mut spans: BTreeMap<Lane, Vec<(u64, u64, Bucket)>> = BTreeMap::new();
    let mut life: BTreeMap<Lane, (u64, u64)> = BTreeMap::new();
    for e in events {
        if e.track == NIC_TRACK {
            continue;
        }
        let lane = (e.node.0, e.track);
        let at = e.at.as_nanos();
        let end = at + e.dur_ns;
        let lf = life.entry(lane).or_insert((at, end));
        lf.0 = lf.0.min(at);
        lf.1 = lf.1.max(end);
        if let Event::Edge { kind, src_node, src_track, src_ns, .. } = e.event {
            // Wire time surfaces as a self-lane edge: the thread blocked
            // from issuing the fetch (src) until the data landed (at).
            let self_lane = src_node == e.node.0 && src_track == e.track;
            let moves_data = matches!(
                kind,
                EdgeKind::PageFetch | EdgeKind::BatchFetch | EdgeKind::BatchDiff
            );
            if self_lane && moves_data && src_ns < at {
                spans
                    .entry(lane)
                    .or_default()
                    .push((src_ns, at, Bucket::MsgLatency));
            }
        } else if e.dur_ns > 0 {
            if let Some(b) = bucket_for_kind(e.event.kind_name()) {
                spans.entry(lane).or_default().push((at, end, b));
            }
        }
    }
    if life.is_empty() {
        return Err(StallError::NoThreads);
    }

    let run_start = life.values().map(|&(s, _)| s).min().unwrap_or(0);
    let run_end = life.values().map(|&(_, e)| e).max().unwrap_or(0);
    let n_slices = if slice_ns == 0 || run_end <= run_start {
        0
    } else {
        ((run_end - run_start) + slice_ns - 1) / slice_ns
    };
    let mut slices: Vec<Slice> = (0..n_slices)
        .map(|i| Slice {
            start_ns: run_start + i * slice_ns,
            buckets: [0; BUCKETS],
        })
        .collect();

    let mut threads = Vec::with_capacity(life.len());
    for (lane, (start, end)) in life {
        let segs = partition_lane(spans.remove(&lane).unwrap_or_default(), start, end);
        let mut buckets = [0u64; BUCKETS];
        for &(s, e, b) in &segs {
            buckets[b as usize] += e - s;
            if n_slices > 0 {
                // Split the segment across the slice grid; the pieces sum
                // to the segment, so slice sums equal totals exactly.
                let mut t = s;
                while t < e {
                    let idx = ((t - run_start) / slice_ns) as usize;
                    let slice_end = run_start + (idx as u64 + 1) * slice_ns;
                    let piece_end = e.min(slice_end);
                    slices[idx].buckets[b as usize] += piece_end - t;
                    t = piece_end;
                }
            }
        }
        threads.push(ThreadStall {
            node: lane.0,
            track: lane.1,
            start_ns: start,
            end_ns: end,
            buckets,
        });
    }

    Ok(StallProfile { slice_ns, threads, slices })
}

impl StallProfile {
    /// Cluster-wide total per bucket, summed over all threads.
    pub fn totals(&self) -> [u64; BUCKETS] {
        let mut t = [0u64; BUCKETS];
        for th in &self.threads {
            for (acc, v) in t.iter_mut().zip(th.buckets.iter()) {
                *acc += v;
            }
        }
        t
    }

    /// Sum of every thread's lifetime — equals the sum of [`Self::totals`]
    /// by construction.
    pub fn lifetime_ns(&self) -> u64 {
        self.threads.iter().map(|t| t.lifetime_ns()).sum()
    }

    /// Renders the paper-style per-thread stall table (percent of each
    /// thread's lifetime per bucket, plus a cluster totals row).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {title}: per-thread stall profile ===");
        let _ = write!(out, "{:<10} {:>12}", "thread", "lifetime");
        for b in Bucket::ALL {
            let _ = write!(out, " {:>6}", b.header());
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(23 + 7 * BUCKETS));
        let row = |out: &mut String, label: &str, life: u64, buckets: &[u64; BUCKETS]| {
            let _ = write!(out, "{:<10} {:>12}", label, life);
            for b in Bucket::ALL {
                let pct = if life == 0 {
                    0.0
                } else {
                    100.0 * buckets[b as usize] as f64 / life as f64
                };
                let _ = write!(out, " {:>5.1}%", pct);
            }
            let _ = writeln!(out);
        };
        for t in &self.threads {
            let label = format!("n{}/t{}", t.node, t.track);
            row(&mut out, &label, t.lifetime_ns(), &t.buckets);
        }
        let _ = writeln!(out, "{}", "-".repeat(23 + 7 * BUCKETS));
        row(&mut out, "total", self.lifetime_ns(), &self.totals());
        out
    }

    /// Collapsed-stack export: one `node;thread;bucket value` line per
    /// non-zero bucket, ready for `flamegraph.pl` / speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for t in &self.threads {
            for b in Bucket::ALL {
                let v = t.buckets[b as usize];
                if v > 0 {
                    let _ = writeln!(out, "node{};t{};{} {}", t.node, t.track, b.name(), v);
                }
            }
        }
        out
    }

    /// Deterministic JSON (hand-rolled — the workspace `serde` is an
    /// offline marker shim).
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(1024);
        let _ = write!(
            j,
            "{{\n  \"slice_ns\": {},\n  \"lifetime_ns\": {},",
            self.slice_ns,
            self.lifetime_ns()
        );
        let buckets = |j: &mut String, indent: &str, b: &[u64; BUCKETS]| {
            for (i, bk) in Bucket::ALL.iter().enumerate() {
                if i > 0 {
                    j.push(',');
                }
                let _ = write!(j, "\n{indent}\"{}\": {}", bk.name(), b[i]);
            }
        };
        j.push_str("\n  \"totals\": {");
        buckets(&mut j, "    ", &self.totals());
        j.push_str("\n  },\n  \"threads\": [");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\n    {{\"node\": {}, \"track\": {}, \"start_ns\": {}, \"end_ns\": {},",
                t.node, t.track, t.start_ns, t.end_ns
            );
            buckets(&mut j, "     ", &t.buckets);
            j.push('}');
        }
        j.push_str("\n  ],\n  \"slices\": [");
        for (i, s) in self.slices.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(j, "\n    {{\"start_ns\": {},", s.start_ns);
            buckets(&mut j, "     ", &s.buckets);
            j.push('}');
        }
        j.push_str("\n  ]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Layer};
    use sim::{NodeId, SimTime};

    fn span(at: u64, dur: u64, node: u32, track: u64, event: Event, layer: Layer) -> EventRecord {
        EventRecord {
            at: SimTime::from_nanos(at),
            dur_ns: dur,
            node: NodeId(node),
            track,
            layer,
            event,
        }
    }

    fn self_edge(node: u32, track: u64, src_ns: u64, at: u64, kind: EdgeKind) -> EventRecord {
        EventRecord {
            at: SimTime::from_nanos(at),
            dur_ns: 0,
            node: NodeId(node),
            track,
            layer: kind.layer(),
            event: Event::Edge {
                kind,
                src_node: node,
                src_track: track,
                src_ns,
                obj: 9,
            },
        }
    }

    #[test]
    fn dropped_refused_and_empty_refused() {
        assert_eq!(analyze(&[], 2, 0).unwrap_err(), StallError::DroppedEvents(2));
        assert_eq!(analyze(&[], 0, 0).unwrap_err(), StallError::NoThreads);
    }

    #[test]
    fn exact_partition_with_nested_spans() {
        // Lifetime 0..100; fault 10..50 with a prefetch-masked tail
        // 30..40 and wire time 15..25 nested inside; barrier 60..90.
        let evs = vec![
            span(0, 0, 0, 1, Event::Sched { kind: crate::SchedKind::Spawn }, Layer::Sched),
            span(10, 40, 0, 1, Event::FaultSpan { page: 9, write: false }, Layer::Proto),
            span(30, 10, 0, 1, Event::PrefetchMasked { page: 9 }, Layer::Proto),
            self_edge(0, 1, 15, 25, EdgeKind::PageFetch),
            span(60, 30, 0, 1, Event::BarrierWait { id: 1 }, Layer::Sync),
            span(100, 0, 0, 1, Event::Sched { kind: crate::SchedKind::Exit }, Layer::Sched),
        ];
        let p = analyze(&evs, 0, 0).unwrap();
        assert_eq!(p.threads.len(), 1);
        let t = &p.threads[0];
        assert_eq!((t.start_ns, t.end_ns), (0, 100));
        assert_eq!(t.buckets[Bucket::PageFault as usize], 20); // 10..15, 25..30, 40..50
        assert_eq!(t.buckets[Bucket::MsgLatency as usize], 10); // 15..25
        assert_eq!(t.buckets[Bucket::PrefetchMasked as usize], 10); // 30..40
        assert_eq!(t.buckets[Bucket::BarrierWait as usize], 30); // 60..90
        assert_eq!(t.buckets[Bucket::Compute as usize], 30); // 0..10, 50..60, 90..100
        assert_eq!(t.buckets.iter().sum::<u64>(), t.lifetime_ns());
    }

    #[test]
    fn slices_sum_to_totals() {
        let evs = vec![
            span(0, 70, 0, 1, Event::LockWait { id: 7 }, Layer::Sync),
            span(5, 90, 1, 2, Event::PthBarrierWait { id: 3 }, Layer::Rt),
        ];
        let p = analyze(&evs, 0, 32).unwrap();
        assert_eq!(p.slice_ns, 32);
        assert!(!p.slices.is_empty());
        let totals = p.totals();
        let mut from_slices = [0u64; BUCKETS];
        for s in &p.slices {
            for (acc, v) in from_slices.iter_mut().zip(s.buckets.iter()) {
                *acc += v;
            }
        }
        assert_eq!(from_slices, totals);
        assert_eq!(totals.iter().sum::<u64>(), p.lifetime_ns());
    }

    #[test]
    fn nic_lane_ignored_and_collapsed_and_json_valid() {
        let evs = vec![
            span(0, 50, 0, 1, Event::LockWait { id: 7 }, Layer::Sync),
            span(0, 500, 0, NIC_TRACK, Event::SanSend { to: 1, bytes: 4 }, Layer::San),
        ];
        let p = analyze(&evs, 0, 16).unwrap();
        assert_eq!(p.threads.len(), 1);
        let folded = p.collapsed();
        assert!(folded.contains("node0;t1;mutex_wait 50"));
        crate::json::validate(&p.to_json()).expect("stall JSON parses");
        let text = p.render("TEST");
        assert!(text.contains("per-thread stall profile"));
        // Determinism: same input, same bytes.
        let q = analyze(&evs, 0, 16).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.to_json(), q.to_json());
    }
}
