//! A tiny recursive-descent JSON validator.
//!
//! The workspace is offline (`serde` is a marker shim, there is no
//! `serde_json`), but the exporters emit JSON artifacts that CI must prove
//! well-formed. This validator accepts exactly RFC-8259 JSON; it does not
//! build a value tree, it only checks syntax.

/// Validates that `s` is one well-formed JSON value (with nothing but
/// whitespace after it).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{} at byte {}", what, self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                0x00..=0x1F => return self.err("raw control character in string"),
                _ => self.i += 1,
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return self.err("expected a digit"),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return self.err("expected a fraction digit");
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return self.err("expected an exponent digit");
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "{\"a\": [1, 2, {\"b\": false}], \"c\": null}",
            "  [1]\n",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{a: 1}",
            "01",
            "1.",
            "\"\x01\"",
            "nul",
            "[1] x",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }
}
