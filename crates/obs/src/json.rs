//! A tiny recursive-descent JSON validator and value parser.
//!
//! The workspace is offline (`serde` is a marker shim, there is no
//! `serde_json`), but the exporters emit JSON artifacts that CI must prove
//! well-formed. [`validate`] accepts exactly RFC-8259 JSON without
//! building a value tree; [`parse`] builds a [`Value`] tree for the
//! consumers that need one (`obs::diff`, the `cablestat` CLI).

/// Validates that `s` is one well-formed JSON value (with nothing but
/// whitespace after it).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0, depth: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

/// Maximum container nesting depth either parser accepts. The artifacts
/// nest a handful of levels; the bound exists so adversarial or corrupt
/// input (`[[[[…`) fails with an error instead of exhausting the stack —
/// both [`validate`] and [`parse`] recurse per nesting level.
pub const MAX_DEPTH: usize = 128;

/// Converts a byte offset in `s` (as reported in [`validate`]/[`parse`]
/// errors) to 1-based `(line, column)`, for human-addressable error
/// reporting (`cablestat check`).
pub fn line_col(s: &str, byte: usize) -> (usize, usize) {
    let upto = &s.as_bytes()[..byte.min(s.len())];
    let line = upto.iter().filter(|&&c| c == b'\n').count() + 1;
    let col = upto.len() - upto.iter().rposition(|&c| c == b'\n').map_or(0, |p| p + 1) + 1;
    (line, col)
}

/// A parsed JSON value.
///
/// Object members keep their document order (a `Vec` of pairs, not a
/// map), so re-serializing a parsed document is deterministic and diffs
/// walk both documents in a stable order. Numbers are `f64` — every
/// quantity the artifacts carry (simulated nanoseconds, counts) is well
/// inside the 2^53 exact-integer range.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes the value back to compact deterministic JSON. Integral
    /// numbers print without a fraction, so a parse→write round trip of
    /// the integer-only artifacts is lossless.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0, depth: 0 };
    p.ws();
    let v = p.build()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(&format!("nesting deeper than {MAX_DEPTH}"));
        }
        Ok(())
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{} at byte {}", what, self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    /// Parses one value, building the tree ([`parse`]'s workhorse).
    fn build(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                self.eat(b'{')?;
                self.ws();
                let mut m = Vec::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(m));
                }
                loop {
                    self.ws();
                    let k = self.build_string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let v = self.build()?;
                    m.push((k, v));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            self.depth -= 1;
                            return Ok(Value::Obj(m));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'[') => {
                self.descend()?;
                self.eat(b'[')?;
                self.ws();
                let mut v = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(v));
                }
                loop {
                    self.ws();
                    v.push(self.build()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            self.depth -= 1;
                            return Ok(Value::Arr(v));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(self.build_string()?)),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.number()?;
                let text = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| format!("non-utf8 number at byte {start}"))?;
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("unparseable number at byte {start}"))
            }
            _ => self.err("expected a JSON value"),
        }
    }

    /// Validates and decodes one string literal.
    fn build_string(&mut self) -> Result<String, String> {
        let start = self.i;
        self.string()?;
        let raw = std::str::from_utf8(&self.b[start + 1..self.i - 1])
            .map_err(|_| format!("non-utf8 string at byte {start}"))?;
        if !raw.contains('\\') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut it = raw.chars();
        while let Some(c) = it.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match it.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (&mut it).take(4).collect();
                    let cp = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in string at byte {start}"))?;
                    // Surrogate halves (already validated as hex) decode to
                    // the replacement character; the artifacts never emit
                    // them.
                    out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                }
                _ => return Err(format!("bad escape in string at byte {start}")),
            }
        }
        Ok(out)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.descend()?;
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.descend()?;
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                0x00..=0x1F => return self.err("raw control character in string"),
                _ => self.i += 1,
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return self.err("expected a digit"),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return self.err("expected a fraction digit");
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return self.err("expected an exponent digit");
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "{\"a\": [1, 2, {\"b\": false}], \"c\": null}",
            "  [1]\n",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse("{\"a\": [1, 2.5, {\"b\": false}], \"c\": null, \"d\": \"x\\ny\"}").unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d").and_then(Value::as_str), Some("x\ny"));
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].get("b").and_then(Value::as_bool), Some(false));
        // Round trip is deterministic and stays valid.
        let j = v.to_json();
        assert_eq!(parse(&j).unwrap(), v);
        validate(&j).unwrap();
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["{", "[1,]", "{\"a\"}", "nul", "[1] x"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{a: 1}",
            "01",
            "1.",
            "\"\x01\"",
            "nul",
            "[1] x",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn rejects_truncations_of_a_valid_document() {
        // Fuzz-style: every proper prefix of a valid document must be
        // rejected by both entry points (never panic, never accept).
        let doc = "{\"a\": [1, 2.5e-3, {\"b\": [false, \"x\\u00e9\\n\"]}], \"c\": null}";
        validate(doc).unwrap();
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let t = &doc[..cut];
            assert!(validate(t).is_err(), "prefix {t:?} accepted");
            assert!(parse(t).is_err(), "prefix {t:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // One level under the cap parses; one over fails with a depth
        // error, not a stack overflow.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        validate(&ok).unwrap();
        parse(&ok).unwrap();
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(validate(&deep).unwrap_err().contains("nesting"));
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        // A pathological unclosed ramp must also fail cleanly.
        let ramp = "[{\"k\":".repeat(50_000);
        assert!(validate(&ramp).is_err());
        assert!(parse(&ramp).is_err());
    }

    #[test]
    fn duplicate_keys_keep_document_order_and_get_is_first_wins() {
        // RFC 8259 leaves duplicate-key semantics to the consumer; ours
        // is documented: members keep document order, `get` returns the
        // first match. Pin it so a refactor can't silently flip it.
        let v = parse("{\"k\": 1, \"k\": 2, \"j\": 3}").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(1));
        let obj = v.as_obj().unwrap();
        assert_eq!(obj.len(), 3);
        assert_eq!(obj[1].1.as_u64(), Some(2));
        assert_eq!(v.to_json(), "{\"k\":1,\"k\":2,\"j\":3}");
    }

    #[test]
    fn bad_escapes_are_rejected_with_offsets() {
        for bad in [
            "\"\\x\"",       // unknown escape
            "\"\\u12\"",     // truncated \u
            "\"\\u12g4\"",   // non-hex \u
            "\"\\\"",        // escape then EOF
            "\"abc",         // unterminated
            "{\"a\\q\": 1}", // bad escape in a key
        ] {
            let e = validate(bad).unwrap_err();
            assert!(e.contains("byte"), "{bad:?}: error {e:?} has no offset");
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn line_col_addresses_offsets() {
        let doc = "{\n  \"a\": 1,\n  \"b\": oops\n}";
        let e = validate(doc).unwrap_err();
        let byte: usize = e.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(line_col(doc, byte), (3, 8));
        assert_eq!(line_col(doc, 0), (1, 1));
        assert_eq!(line_col(doc, doc.len() + 99), (4, 2));
    }
}
