//! Protocol-semantics tests: release consistency, placement granularity,
//! multiple-writer merging, lock/barrier behaviour — exercised directly
//! against the SVM engine in both modes.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use cables_svm::{Cluster, ClusterConfig, SvmConfig, SvmSystem};
use sim::Sim;

fn system(nodes: usize, cpus: usize, cfg: SvmConfig) -> (Arc<Cluster>, Arc<SvmSystem>) {
    let cluster = Cluster::build(ClusterConfig::small(nodes, cpus));
    let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
    (cluster, sys)
}

fn run_root<F>(cluster: &Arc<Cluster>, f: F)
where
    F: FnOnce(&Sim) + Send + 'static,
{
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], f)
        .expect("protocol test run");
}

#[test]
fn fresh_memory_reads_zero_on_both_modes() {
    for cfg in [SvmConfig::base(), SvmConfig::cables()] {
        let (cluster, sys) = system(2, 1, cfg);
        let s = Arc::clone(&sys);
        run_root(&cluster, move |sim| {
            let a = s.g_malloc(sim, 4096 * 3);
            // Demand-zero pages, across page boundaries.
            assert_eq!(s.read::<u64>(sim, a), 0);
            assert_eq!(s.read::<u64>(sim, a + 4096), 0);
            assert_eq!(s.read::<u8>(sim, a + 8191), 0);
        });
    }
}

#[test]
fn stale_read_allowed_until_acquire_then_fresh() {
    // RC semantics: between synchronization operations a reader may see
    // its old copy; after the next acquire it must see the release.
    let (cluster, sys) = system(2, 1, SvmConfig::cables());
    let s = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 8);
        s.lock(sim, 1);
        s.write::<u64>(sim, a, 1);
        s.unlock(sim, 1);
        let s2 = Arc::clone(&s);
        let w = s.create(sim, move |ws| {
            // Populate a local copy.
            s2.lock(ws, 1);
            assert_eq!(s2.read::<u64>(ws, a), 1);
            s2.unlock(ws, 1);
            ws.advance(10_000_000);
            // Unsynchronized re-read: stale value 1 is legal and expected
            // here (our engine invalidates only at acquires).
            let unsynced = s2.read::<u64>(ws, a);
            assert!(unsynced == 1 || unsynced == 2, "got {unsynced}");
            // Acquire: must observe the master's second write.
            s2.lock(ws, 1);
            assert_eq!(s2.read::<u64>(ws, a), 2);
            s2.unlock(ws, 1);
        });
        sim.advance(1_000_000);
        s.lock(sim, 1);
        s.write::<u64>(sim, a, 2);
        s.unlock(sim, 1);
        sim.wait_exit(w);
    });
}

#[test]
fn concurrent_writers_merge_word_level() {
    // Two nodes write disjoint words of the SAME page in the same
    // barrier interval: word-granularity diffs must merge at the home.
    for cfg in [SvmConfig::base(), SvmConfig::cables()] {
        let (cluster, sys) = system(3, 1, cfg);
        let s = Arc::clone(&sys);
        run_root(&cluster, move |sim| {
            let a = s.g_malloc(sim, 4096);
            // Master homes the page.
            s.write::<u64>(sim, a, 0);
            let n = 3;
            for t in 0..2u64 {
                let s2 = Arc::clone(&s);
                s.create(sim, move |ws| {
                    // Writer t covers words with index % 2 == t (skipping
                    // word 0, the master's).
                    for w in 1..512u64 {
                        if w % 2 == t {
                            s2.write::<u64>(ws, a + w * 8, 1000 + w);
                        }
                    }
                    s2.barrier(ws, 7, n);
                });
            }
            s.barrier(sim, 7, n);
            for w in 1..512u64 {
                assert_eq!(s.read::<u64>(sim, a + w * 8), 1000 + w, "word {w}");
            }
            s.wait_for_end(sim);
        });
    }
}

#[test]
fn concurrent_writers_invalidate_each_other() {
    // Regression for the multi-writer version bug: after the barrier BOTH
    // writers (not just the home) must observe each other's words.
    let (cluster, sys) = system(3, 1, SvmConfig::cables());
    let s = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 4096);
        s.write::<u64>(sim, a, 0);
        let n = 3;
        for t in 0..2u64 {
            let s2 = Arc::clone(&s);
            s.create(sim, move |ws| {
                s2.write::<u64>(ws, a + 8 + t * 8, 100 + t);
                s2.barrier(ws, 9, n);
                // Cross-check the other writer's word.
                let other = 1 - t;
                assert_eq!(
                    s2.read::<u64>(ws, a + 8 + other * 8),
                    100 + other,
                    "writer {t} must see writer {other}"
                );
                s2.barrier(ws, 9, n);
            });
        }
        s.barrier(sim, 9, n);
        s.barrier(sim, 9, n);
        s.wait_for_end(sim);
    });
}

#[test]
fn placement_granularity_homes_whole_chunk_in_cables_mode() {
    let (cluster, sys) = system(2, 1, SvmConfig::cables());
    let s = Arc::clone(&sys);
    let sys2 = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 64 << 10);
        s.write::<u64>(sim, a, 1); // first touch: one page of the chunk
    });
    // All 16 pages of the chunk were placed in one operation.
    let stats = sys2.node_stats(sys2.master());
    assert_eq!(stats.placements, 1);
    let rep = sys2.placement_report();
    assert_eq!(rep.touched_pages, 1, "only one page actually touched");
}

#[test]
fn placement_granularity_is_per_page_in_base_mode() {
    let (cluster, sys) = system(2, 1, SvmConfig::base());
    let s = Arc::clone(&sys);
    let sys2 = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 64 << 10);
        s.write::<u64>(sim, a, 1);
        s.write::<u64>(sim, a + 4096, 1);
    });
    assert_eq!(sys2.node_stats(sys2.master()).placements, 2);
}

#[test]
fn fetch_stats_account_whole_pages() {
    let (cluster, sys) = system(2, 1, SvmConfig::cables());
    let s = Arc::clone(&sys);
    let sys2 = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 4096 * 2);
        s.write::<u64>(sim, a, 5);
        s.write::<u64>(sim, a + 4096, 6);
        let s2 = Arc::clone(&s);
        let w = s.create(sim, move |ws| {
            assert_eq!(s2.read::<u64>(ws, a), 5);
            assert_eq!(s2.read::<u64>(ws, a + 4096), 6);
        });
        sim.wait_exit(w);
    });
    let total = sys2.total_stats();
    assert_eq!(total.remote_fetches, 2);
    assert_eq!(total.fetch_bytes, 2 * 4096);
}

#[test]
fn lock_handoff_is_fifo() {
    let (cluster, sys) = system(4, 1, SvmConfig::base());
    let s = Arc::clone(&sys);
    let order = Arc::new(StdMutex::new(Vec::new()));
    let o2 = Arc::clone(&order);
    run_root(&cluster, move |sim| {
        s.lock(sim, 5);
        let mut kids = Vec::new();
        for t in 0..3u64 {
            let s2 = Arc::clone(&s);
            let o3 = Arc::clone(&o2);
            kids.push(s.create(sim, move |ws| {
                // Stagger arrivals deterministically.
                ws.advance(100_000 * (t + 1));
                s2.lock(ws, 5);
                o3.lock().unwrap().push(t);
                s2.unlock(ws, 5);
            }));
        }
        sim.advance(10_000_000); // everyone queues
        sim.sync_point();
        s.unlock(sim, 5);
        for k in kids {
            sim.wait_exit(k);
        }
    });
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO grant order");
}

#[test]
fn barrier_of_one_is_trivial() {
    let (cluster, sys) = system(1, 1, SvmConfig::base());
    let s = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        for _ in 0..3 {
            s.barrier(sim, 1, 1);
        }
    });
}

#[test]
fn write_through_preserves_correctness_for_single_writer_streams() {
    let mut cfg = SvmConfig::base();
    cfg.write_through_single_writer = true;
    let (cluster, sys) = system(2, 1, cfg);
    let s = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 4096);
        s.write::<u64>(sim, a, 0); // master homes the page
        let s2 = Arc::clone(&s);
        let w = s.create(sim, move |ws| {
            for r in 0..5u64 {
                s2.lock(ws, 2);
                for i in 0..8u64 {
                    s2.write::<u64>(ws, a + 64 + i * 8, r * 10 + i);
                }
                s2.unlock(ws, 2);
            }
        });
        sim.wait_exit(w);
        s.lock(sim, 2);
        for i in 0..8u64 {
            assert_eq!(s.read::<u64>(sim, a + 64 + i * 8), 40 + i);
        }
        s.unlock(sim, 2);
    });
}

#[test]
fn same_node_threads_share_page_table_without_clobber() {
    // Regression for the concurrent same-node fault clobber: two threads
    // on one node write the same fresh page back to back.
    let (cluster, sys) = system(2, 2, SvmConfig::cables());
    let s = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 4096);
        s.write::<u64>(sim, a, 7); // homed on master
        let n = 3;
        for t in 0..2u64 {
            let s2 = Arc::clone(&s);
            // Both workers land on node 1 (round-robin: procs 1 and 2).
            s.create(sim, move |ws| {
                for i in 0..32u64 {
                    s2.write::<u64>(ws, a + 256 + (t * 32 + i) * 8, t * 32 + i);
                }
                s2.barrier(ws, 4, n);
            });
        }
        s.barrier(sim, 4, n);
        for v in 0..64u64 {
            assert_eq!(s.read::<u64>(sim, a + 256 + v * 8), v);
        }
        s.wait_for_end(sim);
    });
}

#[test]
fn notices_do_not_invalidate_own_current_copy() {
    // A single writer's copy survives its own releases (no refetch storm).
    let (cluster, sys) = system(2, 1, SvmConfig::cables());
    let s = Arc::clone(&sys);
    let sys2 = Arc::clone(&sys);
    run_root(&cluster, move |sim| {
        let a = s.g_malloc(sim, 4096);
        s.write::<u64>(sim, a, 0);
        let s2 = Arc::clone(&s);
        let w = s.create(sim, move |ws| {
            for r in 0..10u64 {
                s2.lock(ws, 3);
                s2.write::<u64>(ws, a + 8, r);
                s2.unlock(ws, 3);
            }
        });
        sim.wait_exit(w);
    });
    let total = sys2.total_stats();
    assert!(
        total.remote_fetches <= 2,
        "sole writer must not refetch per round (got {})",
        total.remote_fetches
    );
}

#[test]
fn deterministic_stats_across_identical_runs() {
    fn one() -> (u64, u64, u64) {
        let (cluster, sys) = system(2, 2, SvmConfig::cables());
        let s = Arc::clone(&sys);
        run_root(&cluster, move |sim| {
            let a = s.g_malloc(sim, 4096 * 4);
            let n = 3;
            for t in 0..2u64 {
                let s2 = Arc::clone(&s);
                s.create(sim, move |ws| {
                    for i in 0..256u64 {
                        s2.write::<u64>(ws, a + ((t * 256 + i) % 2048) * 8, i);
                    }
                    s2.barrier(ws, 11, n);
                });
            }
            s.barrier(sim, 11, n);
            s.wait_for_end(sim);
        });
        let t = sys.total_stats();
        (t.read_faults + t.write_faults, t.remote_fetches, t.diffs_sent)
    }
    assert_eq!(one(), one());
}
