//! The protocol trace facility records the canonical event sequence of a
//! producer/consumer hand-off.

use std::sync::Arc;

use cables_svm::{Cluster, ClusterConfig, SvmConfig, SvmSystem, TraceEvent};

#[test]
fn trace_records_fault_place_fetch_diff_invalidate() {
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), SvmConfig::cables());
    sys.set_tracing(true);
    let s = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s.g_malloc(sim, 4096);
            s.lock(sim, 1);
            s.write::<u64>(sim, a, 1); // fault + place on master
            s.unlock(sim, 1);
            let s2 = Arc::clone(&s);
            let w = s.create(sim, move |ws| {
                s2.lock(ws, 1);
                let v = s2.read::<u64>(ws, a); // fault + fetch
                s2.write::<u64>(ws, a, v + 1); // write upgrade
                s2.unlock(ws, 1); // diff to home
            });
            sim.wait_exit(w);
            s.lock(sim, 1); // acquire: master's copy is home, no inval
            assert_eq!(s.read::<u64>(sim, a), 2);
            s.unlock(sim, 1);
        })
        .unwrap();

    let trace = sys.take_trace();
    assert!(!trace.is_empty());
    // Timestamps are nondecreasing.
    for pair in trace.windows(2) {
        assert!(pair[0].at <= pair[1].at, "trace out of order");
    }
    let kinds: Vec<&'static str> = trace
        .iter()
        .map(|r| match r.event {
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Place { .. } => "place",
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Diff { .. } => "diff",
            TraceEvent::Invalidate { .. } => "inval",
            TraceEvent::Migrate { .. } => "migrate",
        })
        .collect();
    assert!(kinds.contains(&"fault"));
    assert!(kinds.contains(&"place"));
    assert!(kinds.contains(&"fetch"));
    assert!(kinds.contains(&"diff"));
    // Ordering: the place precedes any fetch, which precedes the diff.
    let pos = |k: &str| kinds.iter().position(|x| *x == k).unwrap();
    assert!(pos("place") < pos("fetch"));
    assert!(pos("fetch") < pos("diff"));
    // Disabled tracing records nothing.
    sys.set_tracing(false);
    assert!(sys.take_trace().is_empty());
}

#[test]
fn trace_is_deterministic() {
    fn one() -> Vec<String> {
        let cluster = Cluster::build(ClusterConfig::small(2, 1));
        let sys = SvmSystem::new(Arc::clone(&cluster), SvmConfig::cables());
        sys.set_tracing(true);
        let s = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let a = s.g_malloc(sim, 4096 * 2);
                s.write::<u64>(sim, a, 1);
                let s2 = Arc::clone(&s);
                let w = s.create(sim, move |ws| {
                    for r in 0..3u64 {
                        s2.lock(ws, 1);
                        s2.write::<u64>(ws, a + 8, r);
                        s2.unlock(ws, 1);
                    }
                });
                sim.wait_exit(w);
            })
            .unwrap();
        sys.take_trace()
            .iter()
            .map(|r| format!("{} {}", r.at, r.event))
            .collect()
    }
    assert_eq!(one(), one());
}
