//! The home-migration policy extension (paper §2.1.3 provides the
//! mechanisms; the policy here is sole-remote-differ streaks).

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use cables_svm::{Cluster, ClusterConfig, SvmConfig, SvmSystem};

fn cables_cfg(threshold: Option<u32>) -> SvmConfig {
    let mut cfg = SvmConfig::cables();
    cfg.migration_threshold = threshold;
    cfg
}

/// Node 1 repeatedly writes a segment homed on node 0 under a lock.
/// Returns (diffs sent by node 1, migrations to node 1, final value seen
/// by node 0).
fn run(threshold: Option<u32>, rounds: u64) -> (u64, u64, u64) {
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cables_cfg(threshold));
    let out = Arc::new(StdMutex::new((0u64, 0u64, 0u64)));
    let o2 = Arc::clone(&out);
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, 4096);
            // Master first-touches: home on node 0.
            s2.write::<u64>(sim, a, 0);
            let s3 = Arc::clone(&s2);
            let worker = s2.create(sim, move |ws| {
                for r in 0..rounds {
                    s3.lock(ws, 1);
                    for w in 0..16u64 {
                        s3.write::<u64>(ws, a + w * 8, r * 100 + w);
                    }
                    s3.unlock(ws, 1);
                }
            });
            sim.wait_exit(worker);
            s2.lock(sim, 1);
            let v = s2.read::<u64>(sim, a + 8);
            s2.unlock(sim, 1);
            let n1 = cluster.nodes()[1];
            let st = s2.node_stats(n1);
            *o2.lock().unwrap() = (st.diffs_sent, st.migrations, v);
        })
        .unwrap();
    let v = *out.lock().unwrap();
    v
}

#[test]
fn without_policy_every_release_diffs_remotely() {
    let (diffs, migrations, v) = run(None, 8);
    assert_eq!(migrations, 0, "paper configuration never migrates");
    assert_eq!(diffs, 8, "one remote diff per release");
    assert_eq!(v, 701);
}

#[test]
fn policy_migrates_and_stops_remote_diffs() {
    let (diffs, migrations, v) = run(Some(3), 8);
    assert_eq!(migrations, 1, "one chunk migration to the writer");
    assert!(
        diffs <= 3,
        "after migration the writer is home (got {diffs} diffs)"
    );
    assert_eq!(v, 701, "data survives the migration");
}

#[test]
fn reader_on_old_home_sees_post_migration_writes() {
    // After the chunk moves to node 1, node 0's stale copy must be
    // invalidated by the migration notice and refetched from the new home.
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cables_cfg(Some(2)));
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, 4096);
            s2.write::<u64>(sim, a, 1);
            let s3 = Arc::clone(&s2);
            let worker = s2.create(sim, move |ws| {
                for r in 0..6u64 {
                    s3.lock(ws, 1);
                    s3.write::<u64>(ws, a, 10 + r);
                    s3.unlock(ws, 1);
                }
            });
            sim.wait_exit(worker);
            s2.lock(sim, 1);
            assert_eq!(s2.read::<u64>(sim, a), 15);
            s2.unlock(sim, 1);
            // The migration actually happened.
            let st = s2.node_stats(cluster.nodes()[1]);
            assert!(st.migrations >= 1);
        })
        .unwrap();
}

#[test]
fn ping_pong_writers_do_not_thrash_migration() {
    // Alternating writers never build a streak: the chunk stays put.
    let cluster = Cluster::build(ClusterConfig::small(3, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cables_cfg(Some(3)));
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, 4096);
            s2.write::<u64>(sim, a, 0);
            let mk = |sysr: Arc<SvmSystem>, delay: u64| {
                move |ws: &sim::Sim| {
                    ws.advance(delay);
                    for _ in 0..6u64 {
                        sysr.lock(ws, 1);
                        let v = sysr.read::<u64>(ws, a);
                        sysr.write::<u64>(ws, a, v + 1);
                        sysr.unlock(ws, 1);
                        ws.advance(50_000);
                    }
                }
            };
            let w1 = s2.create(sim, mk(Arc::clone(&s2), 0));
            let w2 = s2.create(sim, mk(Arc::clone(&s2), 25_000));
            sim.wait_exit(w1);
            sim.wait_exit(w2);
            s2.lock(sim, 1);
            assert_eq!(s2.read::<u64>(sim, a), 12);
            s2.unlock(sim, 1);
            let total = s2.total_stats();
            assert_eq!(total.migrations, 0, "no streak, no migration");
        })
        .unwrap();
}
