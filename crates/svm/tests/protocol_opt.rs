//! The protocol-traffic optimizations (batched diffs, stride prefetch,
//! lock-data forwarding) are value-preserving, off-by-default, and
//! replay-identical under chaos; migration policy decisions are
//! independent of diff batching.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use cables_svm::{Cluster, ClusterConfig, NodeStats, SvmConfig, SvmSystem};

const PAGE: u64 = 4096;

fn opts_cfg(batch: bool, prefetch: bool, forward: bool) -> SvmConfig {
    SvmConfig::cables().with_protocol_opts(batch, prefetch, forward)
}

/// Master first-touches `pages` pages on node 0, a worker on node 1 scans
/// them sequentially, then rewrites them under a lock; master verifies.
/// Returns (node-1 stats, checksum seen by the worker).
fn scan_run(cfg: SvmConfig, pages: u64) -> (NodeStats, u64) {
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
    let out = Arc::new(StdMutex::new((NodeStats::default(), 0u64)));
    let o2 = Arc::clone(&out);
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, pages * PAGE);
            for p in 0..pages {
                s2.write::<u64>(sim, a + p * PAGE, 1000 + p);
            }
            let s3 = Arc::clone(&s2);
            let sum = Arc::new(StdMutex::new(0u64));
            let sum2 = Arc::clone(&sum);
            let worker = s2.create(sim, move |ws| {
                s3.lock(ws, 1);
                let mut acc = 0u64;
                for p in 0..pages {
                    acc = acc.wrapping_mul(31).wrapping_add(s3.read::<u64>(ws, a + p * PAGE));
                }
                for p in 0..pages {
                    s3.write::<u64>(ws, a + p * PAGE, 2000 + p);
                }
                s3.unlock(ws, 1);
                *sum2.lock().unwrap() = acc;
            });
            sim.wait_exit(worker);
            s2.lock(sim, 1);
            for p in 0..pages {
                assert_eq!(s2.read::<u64>(sim, a + p * PAGE), 2000 + p);
            }
            s2.unlock(sim, 1);
            let st = s2.node_stats(cluster.nodes()[1]);
            *o2.lock().unwrap() = (st, *sum.lock().unwrap());
        })
        .unwrap();
    let v = *out.lock().unwrap();
    v
}

#[test]
fn sequential_scan_prefetches_and_preserves_values() {
    let (off, sum_off) = scan_run(opts_cfg(false, false, false), 16);
    let (on, sum_on) = scan_run(opts_cfg(false, true, false), 16);
    assert_eq!(sum_on, sum_off, "prefetch changed observed values");
    assert_eq!(off.prefetch_issued, 0);
    assert_eq!(off.prefetch_hits, 0);
    assert!(on.prefetch_issued >= 4, "stride run never confirmed");
    assert!(on.prefetch_hits >= 4, "prefetched pages were not consumed");
    assert!(
        on.remote_fetches < off.remote_fetches,
        "prefetch did not reduce fetch messages ({} -> {})",
        off.remote_fetches,
        on.remote_fetches
    );
}

#[test]
fn batched_diffs_cut_messages_not_bytes() {
    let (off, sum_off) = scan_run(opts_cfg(false, false, false), 16);
    let (on, sum_on) = scan_run(opts_cfg(true, false, false), 16);
    assert_eq!(sum_on, sum_off, "batching changed observed values");
    assert_eq!(off.diff_batches, 0);
    assert!(on.diff_batches >= 1, "no diff batch was shipped");
    assert!(
        on.diffs_sent < off.diffs_sent,
        "batching did not reduce diff messages ({} -> {})",
        off.diffs_sent,
        on.diffs_sent
    );
    assert_eq!(
        on.diff_bytes, off.diff_bytes,
        "batching must move exactly the same dirty bytes"
    );
}

/// Master bumps a page under a lock; a fresh worker is spawned each round
/// to read it back. Workers alternate nodes (round-robin placement), so
/// node 1 re-fetches the page round after round — exactly the hot-page
/// pattern lock forwarding targets.
fn pingpong_run(cfg: SvmConfig, rounds: u64) -> NodeStats {
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
    let out = Arc::new(StdMutex::new(NodeStats::default()));
    let o2 = Arc::clone(&out);
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, PAGE);
            s2.write::<u64>(sim, a, 0);
            for r in 0..rounds {
                s2.lock(sim, 1);
                s2.write::<u64>(sim, a, 100 + r);
                s2.unlock(sim, 1);
                let s3 = Arc::clone(&s2);
                let worker = s2.create(sim, move |ws| {
                    s3.lock(ws, 1);
                    assert_eq!(s3.read::<u64>(ws, a), 100 + r, "round {r}");
                    s3.unlock(ws, 1);
                });
                sim.wait_exit(worker);
            }
            *o2.lock().unwrap() = s2.total_stats();
        })
        .unwrap();
    let v = *out.lock().unwrap();
    v
}

#[test]
fn lock_forwarding_refreshes_hot_pages_at_grant() {
    let mut on = opts_cfg(false, false, true);
    on.lock_forward_hot = 2;
    let st_on = pingpong_run(on, 10);
    let st_off = pingpong_run(opts_cfg(false, false, false), 10);
    assert_eq!(st_off.lock_forwards, 0);
    assert!(
        st_on.lock_forwards >= 1,
        "hot stale page was never forwarded at a lock grant"
    );
    assert!(
        st_on.remote_fetches < st_off.remote_fetches,
        "forwarding did not displace demand fetches ({} -> {})",
        st_off.remote_fetches,
        st_on.remote_fetches
    );
}

#[test]
fn all_off_matches_baseline_config_byte_for_byte() {
    // `with_protocol_opts(false, false, false)` and an untouched
    // `SvmConfig::cables()` must drive byte-identical runs: same stats,
    // same simulated times, same Chrome-trace export.
    let run = |cfg: SvmConfig| -> (NodeStats, String, u64) {
        let cluster = Cluster::build(ClusterConfig::small(2, 1));
        let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
        sys.set_obs(true);
        let out = Arc::new(StdMutex::new((NodeStats::default(), String::new(), 0u64)));
        let o2 = Arc::clone(&out);
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let a = s2.g_malloc(sim, 8 * PAGE);
                for p in 0..8 {
                    s2.write::<u64>(sim, a + p * PAGE, p);
                }
                let s3 = Arc::clone(&s2);
                let worker = s2.create(sim, move |ws| {
                    s3.lock(ws, 1);
                    for p in 0..8 {
                        let v = s3.read::<u64>(ws, a + p * PAGE);
                        s3.write::<u64>(ws, a + p * PAGE, v + 10);
                    }
                    s3.unlock(ws, 1);
                });
                sim.wait_exit(worker);
                s2.lock(sim, 1);
                let v = s2.read::<u64>(sim, a + 7 * PAGE);
                s2.unlock(sim, 1);
                let export = obs::chrome::export(&s2.obs().events());
                *o2.lock().unwrap() = (s2.total_stats(), export, v);
            })
            .unwrap();
        let v = out.lock().unwrap().clone();
        v
    };
    let (st_base, trace_base, v_base) = run(SvmConfig::cables());
    let (st_off, trace_off, v_off) = run(opts_cfg(false, false, false));
    assert_eq!(v_base, 17);
    assert_eq!(v_off, v_base);
    assert_eq!(st_off, st_base, "all-off must not perturb any counter");
    assert_eq!(
        trace_off, trace_base,
        "all-off must export a byte-identical trace"
    );
    // And the new counters are all zero on the untouched protocol.
    assert_eq!(st_base.diff_batches, 0);
    assert_eq!(st_base.batched_diff_bytes, 0);
    assert_eq!(st_base.prefetch_issued, 0);
    assert_eq!(st_base.prefetch_hits, 0);
    assert_eq!(st_base.prefetch_wasted, 0);
    assert_eq!(st_base.lock_forwards, 0);
    assert_eq!(st_base.lock_forward_bytes, 0);
}

#[test]
fn chaos_replay_is_bit_identical_with_all_opts_on() {
    // A batch is one message for drop/duplicate purposes: the same seed
    // must reproduce the same simulated end time and the same counters
    // with every optimization enabled.
    let run = || -> (u64, NodeStats, u64) {
        let cluster = Cluster::build(ClusterConfig::small(2, 1));
        cluster.set_chaos(chaos::ChaosEngine::new(
            42,
            chaos::FaultPlan::new().wire(chaos::WireFaults {
                drop_p: 0.05,
                dup_p: 0.05,
                ..chaos::WireFaults::default()
            }),
        ));
        let mut cfg = opts_cfg(true, true, true);
        cfg.lock_forward_hot = 2;
        let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
        let out = Arc::new(StdMutex::new((0u64, NodeStats::default(), 0u64)));
        let o2 = Arc::clone(&out);
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let a = s2.g_malloc(sim, 16 * PAGE);
                for p in 0..16 {
                    s2.write::<u64>(sim, a + p * PAGE, p);
                }
                let s3 = Arc::clone(&s2);
                let worker = s2.create(sim, move |ws| {
                    s3.lock(ws, 1);
                    let mut acc = 0u64;
                    for p in 0..16 {
                        acc = acc.wrapping_mul(31).wrapping_add(s3.read::<u64>(ws, a + p * PAGE));
                    }
                    for p in 0..16 {
                        s3.write::<u64>(ws, a + p * PAGE, acc + p);
                    }
                    s3.unlock(ws, 1);
                });
                sim.wait_exit(worker);
                s2.lock(sim, 1);
                let v = s2.read::<u64>(sim, a + 3 * PAGE);
                s2.unlock(sim, 1);
                *o2.lock().unwrap() = (sim.now().as_nanos(), s2.total_stats(), v);
            })
            .unwrap();
        let v = *out.lock().unwrap();
        v
    };
    let (t1, st1, v1) = run();
    let (t2, st2, v2) = run();
    assert_eq!(t1, t2, "chaos replay diverged in simulated time");
    assert_eq!(st1, st2, "chaos replay diverged in protocol counters");
    assert_eq!(v1, v2, "chaos replay diverged in data");
}

/// The migration streak counter must see one diff event per chunk per
/// release regardless of how the diffs travel: batching on and off must
/// migrate at exactly the same threshold.
fn migration_run(threshold: Option<u32>, batch: bool, rounds: u64) -> (u64, u64, u64) {
    let mut cfg = opts_cfg(batch, false, false);
    cfg.migration_threshold = threshold;
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
    let out = Arc::new(StdMutex::new((0u64, 0u64, 0u64)));
    let o2 = Arc::clone(&out);
    let s2 = Arc::clone(&sys);
    cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let a = s2.g_malloc(sim, PAGE);
            s2.write::<u64>(sim, a, 0);
            let s3 = Arc::clone(&s2);
            let worker = s2.create(sim, move |ws| {
                for r in 0..rounds {
                    s3.lock(ws, 1);
                    for w in 0..16u64 {
                        s3.write::<u64>(ws, a + w * 8, r * 100 + w);
                    }
                    s3.unlock(ws, 1);
                }
            });
            sim.wait_exit(worker);
            s2.lock(sim, 1);
            let v = s2.read::<u64>(sim, a + 8);
            s2.unlock(sim, 1);
            let st = s2.node_stats(cluster.nodes()[1]);
            *o2.lock().unwrap() = (st.diffs_sent, st.migrations, v);
        })
        .unwrap();
    let v = *out.lock().unwrap();
    v
}

#[test]
fn migration_triggers_at_the_same_threshold_with_batching() {
    for threshold in [None, Some(3)] {
        let (diffs_off, mig_off, v_off) = migration_run(threshold, false, 8);
        let (diffs_on, mig_on, v_on) = migration_run(threshold, true, 8);
        assert_eq!(
            mig_on, mig_off,
            "batching changed the migration decision at threshold {threshold:?}"
        );
        assert_eq!(v_on, v_off, "data diverged at threshold {threshold:?}");
        // One page to one home per release: message counts agree too.
        assert_eq!(diffs_on, diffs_off);
    }
    // And the policy still actually fires at its documented threshold.
    let (_, mig, v) = migration_run(Some(3), true, 8);
    assert_eq!(mig, 1);
    assert_eq!(v, 701);
}
