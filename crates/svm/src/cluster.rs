//! The simulated cluster: engine + network + memory + communication layer.

use std::fmt;
use std::sync::Arc;

use memsim::{ClusterMem, OsVmConfig};
use san::{San, SanConfig};
use sim::{Engine, NodeId};
use vmmc::{Vmmc, VmmcConfig};

/// Hardware/OS description of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Processors per node (the paper's nodes are 2-way SMPs).
    pub cpus_per_node: usize,
    /// SAN timing model.
    pub san: SanConfig,
    /// OS virtual-memory model.
    pub os: OsVmConfig,
    /// NIC registration limits.
    pub vmmc: VmmcConfig,
}

impl ClusterConfig {
    /// The paper's platform: sixteen 2-way PentiumPro SMPs, Myrinet,
    /// WindowsNT (32 processors total).
    pub fn paper() -> Self {
        ClusterConfig {
            nodes: 16,
            cpus_per_node: 2,
            san: SanConfig::paper(),
            os: OsVmConfig::windows_nt(),
            vmmc: VmmcConfig::paper(),
        }
    }

    /// A convenient small cluster for tests.
    pub fn small(nodes: usize, cpus_per_node: usize) -> Self {
        ClusterConfig {
            nodes,
            cpus_per_node,
            ..ClusterConfig::paper()
        }
    }
}

/// All substrate layers of one simulated cluster, wired together.
pub struct Cluster {
    /// The discrete-event engine (topology + scheduler).
    pub engine: Engine,
    /// The SAN timing model.
    pub san: Arc<San>,
    /// Node physical memories and page tables.
    pub mem: Arc<ClusterMem>,
    /// The VMMC communication layer.
    pub vmmc: Arc<Vmmc>,
    nodes: Vec<NodeId>,
    cpus_per_node: usize,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("cpus_per_node", &self.cpus_per_node)
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster: engine nodes, NICs and memories for every node.
    pub fn build(cfg: ClusterConfig) -> Arc<Cluster> {
        let engine = Engine::new();
        let san = Arc::new(San::new(cfg.san));
        let mem = Arc::new(ClusterMem::new(cfg.os));
        let vmmc = Arc::new(Vmmc::new(cfg.vmmc, Arc::clone(&san), Arc::clone(&mem)));
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for _ in 0..cfg.nodes {
            let id = engine.add_node(cfg.cpus_per_node);
            vmmc.ensure_node(id);
            nodes.push(id);
        }
        Arc::new(Cluster {
            engine,
            san,
            mem,
            vmmc,
            nodes,
            cpus_per_node: cfg.cpus_per_node,
        })
    }

    /// The node ids, in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Processors per node.
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }

    /// Total processors in the cluster.
    pub fn total_cpus(&self) -> usize {
        self.nodes.len() * self.cpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_cluster() {
        let c = Cluster::build(ClusterConfig::paper());
        assert_eq!(c.nodes().len(), 16);
        assert_eq!(c.total_cpus(), 32);
        assert_eq!(c.engine.cpu_count(c.nodes()[0]), 2);
    }

    #[test]
    fn small_cluster_overrides_size() {
        let c = Cluster::build(ClusterConfig::small(2, 1));
        assert_eq!(c.nodes().len(), 2);
        assert_eq!(c.total_cpus(), 2);
    }
}
