//! The simulated cluster: engine + network + memory + communication layer.

use std::fmt;
use std::sync::{Arc, OnceLock};

use chaos::ChaosEngine;
use memsim::{ClusterMem, OsVmConfig};
use obs::{EdgeKind, Event, Layer, ObsSink, SchedKind};
use san::{San, SanConfig};
use sim::{Engine, EngineMode, NodeId, SchedEvent, SchedEventKind};
use vmmc::{Vmmc, VmmcConfig};

/// The engine backend selected by `CABLES_ENGINE_MODE`, defaulting to
/// [`EngineMode::Sequential`]. Unknown values panic loudly rather than
/// silently falling back — a typo'd benchmark run must not masquerade as
/// a parallel one.
fn engine_mode_from_env() -> EngineMode {
    match std::env::var("CABLES_ENGINE_MODE") {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|e| panic!("CABLES_ENGINE_MODE: {e}")),
        _ => EngineMode::Sequential,
    }
}

/// Hardware/OS description of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Processors per node (the paper's nodes are 2-way SMPs).
    pub cpus_per_node: usize,
    /// SAN timing model.
    pub san: SanConfig,
    /// OS virtual-memory model.
    pub os: OsVmConfig,
    /// NIC registration limits.
    pub vmmc: VmmcConfig,
    /// Capacity of the observability event buffer (records beyond this
    /// are dropped-and-counted; metrics still aggregate them).
    pub obs_cap: usize,
    /// Engine execution backend. All modes produce bit-identical results;
    /// they differ only in wall-clock speed and runtime audits (see
    /// [`EngineMode`]). Defaults from the `CABLES_ENGINE_MODE` environment
    /// variable (`sequential` | `parallel` | `parallel_det`) so the whole
    /// test suite can be re-run under another backend without code changes.
    pub engine: EngineMode,
}

impl ClusterConfig {
    /// The paper's platform: sixteen 2-way PentiumPro SMPs, Myrinet,
    /// WindowsNT (32 processors total).
    pub fn paper() -> Self {
        ClusterConfig {
            nodes: 16,
            cpus_per_node: 2,
            san: SanConfig::paper(),
            os: OsVmConfig::windows_nt(),
            vmmc: VmmcConfig::paper(),
            obs_cap: obs::DEFAULT_CAP,
            engine: engine_mode_from_env(),
        }
    }

    /// A convenient small cluster for tests.
    pub fn small(nodes: usize, cpus_per_node: usize) -> Self {
        ClusterConfig {
            nodes,
            cpus_per_node,
            ..ClusterConfig::paper()
        }
    }
}

/// All substrate layers of one simulated cluster, wired together.
pub struct Cluster {
    /// The discrete-event engine (topology + scheduler).
    pub engine: Engine,
    /// The SAN timing model.
    pub san: Arc<San>,
    /// Node physical memories and page tables.
    pub mem: Arc<ClusterMem>,
    /// The VMMC communication layer.
    pub vmmc: Arc<Vmmc>,
    /// The cluster-wide observability sink (disabled by default; every
    /// layer records into this one bus when it is enabled).
    pub obs: Arc<ObsSink>,
    chaos: OnceLock<Arc<ChaosEngine>>,
    nodes: Vec<NodeId>,
    cpus_per_node: usize,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("cpus_per_node", &self.cpus_per_node)
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster: engine nodes, NICs and memories for every node.
    pub fn build(cfg: ClusterConfig) -> Arc<Cluster> {
        let engine = Engine::new();
        engine.set_mode(cfg.engine);
        engine.set_lookahead(Some(cfg.san.lookahead_ns()));
        let san = Arc::new(San::new(cfg.san));
        let mem = Arc::new(ClusterMem::new(cfg.os));
        let vmmc = Arc::new(Vmmc::new(cfg.vmmc, Arc::clone(&san), Arc::clone(&mem)));
        let obs = Arc::new(ObsSink::with_capacity(cfg.obs_cap));
        vmmc.set_obs(Arc::clone(&obs));
        // Forward engine scheduling points onto the bus. The hook runs
        // with the kernel lock held and only touches the sink, never the
        // engine; with the sink disabled it is a single relaxed load.
        let hook_sink = Arc::clone(&obs);
        engine.set_sched_hook(Some(Arc::new(move |e: &SchedEvent| {
            if !hook_sink.on() {
                return;
            }
            let kind = match e.kind {
                SchedEventKind::Spawn => SchedKind::Spawn,
                SchedEventKind::Exit => SchedKind::Exit,
                SchedEventKind::Block => SchedKind::Block,
                SchedEventKind::Wake => SchedKind::Wake,
            };
            hook_sink.instant(Layer::Sched, e.node, e.tid.0, e.at, Event::Sched { kind });
            // Spawn/Wake points with a recorded cause also produce a
            // causal edge so the critical-path walk can cross every
            // engine-level hand-off, not just the ones the runtime
            // layers annotate with typed edges. Zero-latency hand-offs
            // are skipped: the walk only follows strictly-forward edges.
            if let Some(c) = e.cause {
                if c.at < e.at {
                    let ek = match e.kind {
                        SchedEventKind::Spawn => EdgeKind::ThreadStart,
                        SchedEventKind::Wake => EdgeKind::Wakeup,
                        _ => return,
                    };
                    hook_sink.edge(ek, c.node, c.tid.0, c.at, e.node, e.tid.0, e.at, 0);
                }
            }
        })));
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for _ in 0..cfg.nodes {
            let id = engine.add_node(cfg.cpus_per_node);
            vmmc.ensure_node(id);
            nodes.push(id);
        }
        Arc::new(Cluster {
            engine,
            san,
            mem,
            vmmc,
            obs,
            chaos: OnceLock::new(),
            nodes,
            cpus_per_node: cfg.cpus_per_node,
        })
    }

    /// Attaches a deterministic fault-injection engine, forwarding it to
    /// every layer ([`Vmmc`] and, through it, [`San`]). Must be called
    /// before constructing the SVM/CableS runtimes on this cluster so
    /// every layer observes the same plan; later calls are ignored.
    pub fn set_chaos(&self, chaos: Arc<ChaosEngine>) {
        self.vmmc.set_chaos(Arc::clone(&chaos));
        let _ = self.chaos.set(chaos);
    }

    /// The attached chaos engine, if any (cheap: one atomic load).
    #[inline]
    pub fn chaos(&self) -> Option<&Arc<ChaosEngine>> {
        self.chaos.get()
    }

    /// The node ids, in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Processors per node.
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }

    /// Total processors in the cluster.
    pub fn total_cpus(&self) -> usize {
        self.nodes.len() * self.cpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_cluster() {
        let c = Cluster::build(ClusterConfig::paper());
        assert_eq!(c.nodes().len(), 16);
        assert_eq!(c.total_cpus(), 32);
        assert_eq!(c.engine.cpu_count(c.nodes()[0]), 2);
    }

    #[test]
    fn small_cluster_overrides_size() {
        let c = Cluster::build(ClusterConfig::small(2, 1));
        assert_eq!(c.nodes().len(), 2);
        assert_eq!(c.total_cpus(), 2);
    }
}
