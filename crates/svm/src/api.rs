//! The base-system facade: allocation, thread creation, and run helpers.
//!
//! [`SvmSystem`] is the object M4-style applications talk to. It is also
//! the protocol engine CableS builds on (the `cables` crate re-uses the
//! same instance with [`crate::config::ProtoMode::Cables`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use memsim::{GAddr, PAGE_SIZE};
use parking_lot::Mutex;
use sim::{NodeId, Sim, Tid};

use crate::cluster::Cluster;
use crate::config::SvmConfig;
use crate::proto::{ProtoState, HEAP_BASE};

/// A shared-virtual-memory system instance over a [`Cluster`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cables_svm::{Cluster, ClusterConfig, SvmConfig, SvmSystem};
///
/// let cluster = Cluster::build(ClusterConfig::small(2, 1));
/// let sys = SvmSystem::new(Arc::clone(&cluster), SvmConfig::base());
/// let sys2 = Arc::clone(&sys);
/// let root = cluster.nodes()[0];
/// cluster.engine.clone().run(root, move |sim| {
///     let a = sys2.g_malloc(sim, 64);
///     sys2.write(sim, a, 41u64);
///     assert_eq!(sys2.read::<u64>(sim, a), 41);
/// }).unwrap();
/// ```
pub struct SvmSystem {
    pub(crate) cluster: Arc<Cluster>,
    pub(crate) cfg: SvmConfig,
    pub(crate) state: Mutex<ProtoState>,
    pub(crate) master: NodeId,
    /// When false, the bulk slice API degrades to per-scalar loops and the
    /// memory layer's software TLB is bypassed (measurement baseline).
    pub(crate) fast_path: AtomicBool,
    /// Number of threads removed by node-crash recovery whose barrier
    /// arrivals must be forgiven (see `crash_add_discount`). Always zero
    /// without chaos, so the release check is unchanged in normal runs.
    pub(crate) crashed_discount: AtomicU64,
}

impl fmt::Debug for SvmSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SvmSystem")
            .field("mode", &self.cfg.mode)
            .field("nodes", &self.cluster.nodes().len())
            .finish()
    }
}

impl SvmSystem {
    /// Creates a system over `cluster` with the given protocol config.
    pub fn new(cluster: Arc<Cluster>, cfg: SvmConfig) -> Arc<Self> {
        let nodes = cluster.nodes().len();
        let master = cluster.nodes()[0];
        Arc::new(SvmSystem {
            cluster,
            cfg,
            state: Mutex::new(ProtoState::new(nodes)),
            master,
            fast_path: AtomicBool::new(true),
            crashed_discount: AtomicU64::new(0),
        })
    }

    /// Crash checkpoint: when a chaos plan says this thread's node has
    /// crashed, unwinds with the typed [`chaos::CrashUnwind`] payload so
    /// the runtime above (CableS) can absorb it instead of dying. A pure
    /// no-op — one `Option` check — when no crash plan is attached.
    /// Public so runtimes layered on top can add their own checkpoints.
    #[inline]
    pub fn crash_check(&self, sim: &Sim) {
        if let Some(c) = self.cluster.chaos() {
            if c.crashes_armed() && c.crashed(sim.node().0, sim.now().as_nanos()) {
                std::panic::panic_any(chaos::CrashUnwind);
            }
        }
    }

    /// Enables or disables the hot-path optimizations end to end: bulk
    /// page-run access, the memory layer's software TLB, and the engine's
    /// lock-free clock cache. Simulated results are identical either way;
    /// only wall-clock speed changes. On by default.
    pub fn set_fast_path(&self, on: bool) {
        self.fast_path.store(on, Ordering::Relaxed);
        self.cluster.mem.set_slow_mode(!on);
        self.cluster.engine.set_lockless(on);
    }

    /// Whether the hot-path optimizations are enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path.load(Ordering::Relaxed)
    }

    /// Engine statistics with the memory layer's software-TLB counters
    /// merged in (the engine itself reports zeros for those fields).
    pub fn engine_stats(&self) -> sim::EngineStats {
        let mut s = self.cluster.engine.stats();
        let t = self.cluster.mem.tlb_stats();
        s.tlb_hits = t.hits;
        s.tlb_misses = t.misses;
        s
    }

    /// Publishes the engine's scheduling telemetry into the obs gauge
    /// registry (`engine.*` names), so snapshots and the paper-style
    /// reporter surface parallel-engine headroom without grepping engine
    /// internals. No-op when observability is off; the gauges are
    /// deterministic across engine backends (`tests/parallel_engine.rs`
    /// pins `EngineStats` equality), so snapshot equality across modes is
    /// preserved.
    pub fn publish_engine_telemetry(&self) {
        if !self.cluster.obs.on() {
            return;
        }
        let s = self.engine_stats();
        let o = &self.cluster.obs;
        o.gauge_set("engine.window_admissible", s.window_admissible);
        o.gauge_set("engine.ready_reallocs", s.ready_reallocs);
        o.gauge_set("engine.context_switches", s.context_switches);
        o.gauge_set("engine.sync_fast_path", s.sync_fast_path);
    }

    /// Publishes migration/placement activity into the obs gauge registry
    /// (`proto.*` names): total migrations, per-node ping-pong handoffs,
    /// and the counter policy's decision counters. Zero-valued gauges are
    /// skipped — a run without migration activity publishes nothing, so
    /// artifacts from policy-off runs stay byte-identical to pre-policy
    /// ones. No-op when observability is off.
    pub fn publish_placement_telemetry(&self) {
        if !self.cluster.obs.on() {
            return;
        }
        let o = &self.cluster.obs;
        let t = self.total_stats();
        let set = |name: &str, v: u64| {
            if v > 0 {
                o.gauge_set(name, v);
            }
        };
        set("proto.migrations", t.migrations);
        set("proto.pingpong_handoffs", t.pingpong_handoffs);
        set("proto.policy_considered", t.policy_considered);
        set("proto.policy_migrations", t.policy_migrations);
        let st = self.state.lock();
        for (i, n) in st.nodes.iter().enumerate() {
            if n.stats.pingpong_handoffs > 0 {
                o.gauge_set(
                    &format!("proto.node{i}.pingpong_handoffs"),
                    n.stats.pingpong_handoffs,
                );
            }
            if n.stats.migrations > 0 {
                o.gauge_set(&format!("proto.node{i}.migrations"), n.stats.migrations);
            }
        }
    }

    /// Enables or disables the cluster-wide observability layer (event
    /// bus + metric registries, see the `obs` crate). Like
    /// [`SvmSystem::set_fast_path`], toggling never changes simulated
    /// results — recording charges no virtual time. Off by default.
    pub fn set_obs(&self, on: bool) {
        self.cluster.obs.set_enabled(on);
    }

    /// The cluster's observability sink (events, metrics, exporter input).
    pub fn obs(&self) -> &Arc<obs::ObsSink> {
        &self.cluster.obs
    }

    /// The sink, only when full observability is enabled (hot-path check).
    #[inline]
    pub(crate) fn obs_if_on(&self) -> Option<&obs::ObsSink> {
        let o = &self.cluster.obs;
        if o.on() {
            Some(o)
        } else {
            None
        }
    }

    /// The cluster this system runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SvmConfig {
        &self.cfg
    }

    /// The master node (holds the directory / ACB).
    pub fn master(&self) -> NodeId {
        self.master
    }

    /// Allocates `bytes` of global shared memory and returns its address.
    ///
    /// Homes are *not* assigned here — binding is delayed until first
    /// touch, at the system's placement granularity. Allocations of a page
    /// or more are page-aligned; smaller ones are 8-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn g_malloc(&self, sim: &Sim, bytes: u64) -> GAddr {
        assert!(bytes > 0, "g_malloc of zero bytes");
        sim.op_point(2_000);
        let mut st = self.state.lock();
        let align = if bytes >= PAGE_SIZE { PAGE_SIZE } else { 8 };
        let base = GAddr::new(st.alloc_next).align_up(align);
        st.alloc_next = base.raw() + bytes;
        st.alloc_ranges.push((base.raw(), bytes));
        base
    }

    /// Total bytes of global shared memory allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.alloc_next - HEAP_BASE.raw()
    }

    /// Creates a worker thread, assigning it to the next processor in
    /// round-robin order across the cluster (the M4 `CREATE` behaviour —
    /// one thread per processor, wrapping if oversubscribed).
    pub fn create<F>(self: &Arc<Self>, sim: &Sim, f: F) -> Tid
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        // Thread creation is a release point: the new thread must observe
        // everything the creator wrote so far.
        self.release(sim);
        sim.op_point(self.cfg.costs.create_bookkeeping_ns);
        let target = {
            let mut st = self.state.lock();
            let proc = st.next_proc;
            st.next_proc += 1;
            let cpus = self.cluster.cpus_per_node();
            let nodes = self.cluster.nodes();
            nodes[(proc / cpus) % nodes.len()]
        };
        let start;
        if target == sim.node() {
            sim.advance(self.cfg.costs.os_thread_create_ns);
            start = sim.now();
        } else {
            let t = self.cluster.san.notify(sim.node(), target, sim.now());
            sim.clock_at_least(t.local_done);
            start = t.arrival + self.cfg.costs.os_thread_create_ns;
        }
        let sys = Arc::clone(self);
        let tid = sim.spawn_on(target, start, "svm-worker", move |wsim| {
            f(wsim);
            // RC release on thread termination so joiners observe the
            // worker's writes.
            sys.release(wsim);
        });
        self.state.lock().created.push(tid);
        tid
    }

    /// Waits for every thread created through [`SvmSystem::create`] so far
    /// (the M4 `WAIT_FOR_END` behaviour).
    pub fn wait_for_end(&self, sim: &Sim) {
        loop {
            let next = {
                let mut st = self.state.lock();
                st.created.pop()
            };
            match next {
                Some(tid) => sim.wait_exit(tid),
                None => break,
            }
        }
        // RC acquire: observe the joined workers' writes.
        self.acquire(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::proto::HEAP_BASE;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn setup(nodes: usize, cpus: usize, cfg: SvmConfig) -> (Arc<Cluster>, Arc<SvmSystem>) {
        let cluster = Cluster::build(ClusterConfig::small(nodes, cpus));
        let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
        (cluster, sys)
    }

    #[test]
    fn g_malloc_aligns_and_separates() {
        let (cluster, sys) = setup(1, 1, SvmConfig::base());
        let s = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let a = s.g_malloc(sim, 16);
                let b = s.g_malloc(sim, 16);
                assert_eq!(a.raw() % 8, 0);
                assert!(b.raw() >= a.raw() + 16);
                let big = s.g_malloc(sim, PAGE_SIZE * 2);
                assert_eq!(big.raw() % PAGE_SIZE, 0);
                assert!(a.raw() >= HEAP_BASE.raw());
            })
            .unwrap();
        assert!(sys.allocated_bytes() >= 32 + 2 * PAGE_SIZE);
    }

    #[test]
    fn local_write_then_read_roundtrips() {
        let (cluster, sys) = setup(1, 1, SvmConfig::base());
        let s = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let a = s.g_malloc(sim, 4096);
                s.write(sim, a + 8, 3.25f64);
                assert_eq!(s.read::<f64>(sim, a + 8), 3.25);
            })
            .unwrap();
    }

    #[test]
    fn create_round_robin_across_nodes() {
        let (cluster, sys) = setup(2, 2, SvmConfig::base());
        let s = Arc::clone(&sys);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                for _ in 0..3 {
                    let seen3 = Arc::clone(&seen2);
                    s.create(sim, move |cs| {
                        seen3.lock().unwrap().push(cs.node().0);
                    });
                }
                s.wait_for_end(sim);
            })
            .unwrap();
        let mut v = seen.lock().unwrap().clone();
        v.sort_unstable();
        // procs 1,2,3 on a 2-cpu/node cluster -> nodes 0,1,1
        assert_eq!(v, vec![0, 1, 1]);
    }

    #[test]
    fn wait_for_end_joins_all() {
        let (cluster, sys) = setup(2, 1, SvmConfig::base());
        let s = Arc::clone(&sys);
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                for _ in 0..4 {
                    let c3 = Arc::clone(&c2);
                    s.create(sim, move |cs| {
                        cs.advance(10_000);
                        c3.fetch_add(1, Ordering::SeqCst);
                    });
                }
                s.wait_for_end(sim);
                assert_eq!(c2.load(Ordering::SeqCst), 4);
            })
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "g_malloc of zero bytes")]
    fn zero_malloc_panics() {
        let (cluster, sys) = setup(1, 1, SvmConfig::base());
        let s = Arc::clone(&sys);
        let r = cluster.engine.clone().run(cluster.nodes()[0], move |sim| {
            s.g_malloc(sim, 0);
        });
        if let Err(e) = r {
            panic!("{e}");
        }
    }
}
