//! Optional protocol event tracing.
//!
//! A bounded, deterministic record of protocol activity — the tool one
//! reaches for when debugging a DSM protocol ("why did this page bounce?").
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`SvmSystem::set_tracing`] and drain with [`SvmSystem::take_trace`].

use std::fmt;

use memsim::PageNum;
use sim::{NodeId, SimTime};

use crate::api::SvmSystem;

/// One protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A page fault entered the protocol handler.
    Fault {
        /// Faulting node.
        node: NodeId,
        /// Faulting page.
        page: PageNum,
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// First touch placed a chunk.
    Place {
        /// New home node.
        node: NodeId,
        /// First page of the placed chunk.
        base: PageNum,
    },
    /// A whole page was fetched from its home.
    Fetch {
        /// Requesting node.
        node: NodeId,
        /// Fetched page.
        page: PageNum,
        /// Home node serving the fetch.
        home: NodeId,
    },
    /// A diff was flushed to a remote home at a release.
    Diff {
        /// Releasing node.
        node: NodeId,
        /// Page whose dirty words were flushed.
        page: PageNum,
        /// Payload bytes.
        bytes: u64,
    },
    /// A cached copy was invalidated at an acquire.
    Invalidate {
        /// Node whose copy died.
        node: NodeId,
        /// Invalidated page.
        page: PageNum,
    },
    /// A chunk migrated to a new home (policy extension).
    Migrate {
        /// The new home.
        node: NodeId,
        /// First page of the migrated chunk.
        base: PageNum,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Fault { node, page, write } => {
                write!(f, "fault {} {} {}", node, page, if *write { "W" } else { "R" })
            }
            TraceEvent::Place { node, base } => write!(f, "place {node} chunk@{base}"),
            TraceEvent::Fetch { node, page, home } => {
                write!(f, "fetch {node} <- {home} {page}")
            }
            TraceEvent::Diff { node, page, bytes } => {
                write!(f, "diff {node} {page} {bytes}B")
            }
            TraceEvent::Invalidate { node, page } => write!(f, "inval {node} {page}"),
            TraceEvent::Migrate { node, base } => write!(f, "migrate -> {node} chunk@{base}"),
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Cap on retained records (oldest are dropped beyond this).
pub const TRACE_CAP: usize = 65_536;

impl SvmSystem {
    /// Enables or disables protocol tracing.
    pub fn set_tracing(&self, on: bool) {
        let mut st = self.state.lock();
        st.tracing = on;
        if !on {
            st.trace.clear();
        }
    }

    /// Drains and returns the recorded events (oldest first).
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        let mut st = self.state.lock();
        std::mem::take(&mut st.trace)
    }

    pub(crate) fn trace(&self, at: SimTime, event: TraceEvent) {
        let mut st = self.state.lock();
        if !st.tracing {
            return;
        }
        if st.trace.len() >= TRACE_CAP {
            st.trace.remove(0);
        }
        st.trace.push(TraceRecord { at, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let e = TraceEvent::Fetch {
            node: NodeId(1),
            page: PageNum::new(7),
            home: NodeId(0),
        };
        assert_eq!(e.to_string(), "fetch n1 <- n0 p7");
        let e = TraceEvent::Fault {
            node: NodeId(2),
            page: PageNum::new(3),
            write: true,
        };
        assert_eq!(e.to_string(), "fault n2 p3 W");
    }
}
