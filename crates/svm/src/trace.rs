//! Optional protocol event tracing (legacy facade).
//!
//! Historically this module kept its own bounded ring buffer. The records
//! now live on the cluster-wide observability bus ([`obs`]); this file is
//! the source-compatible facade over it: the six protocol instants are
//! recorded as [`obs::Event`]s and translated back into [`TraceRecord`]s
//! on drain. Enable with [`SvmSystem::set_tracing`] and drain with
//! [`SvmSystem::take_trace`]; overflow is no longer silent — it increments
//! [`obs::MetricsSnapshot::dropped_events`].

use std::fmt;

use memsim::PageNum;
use sim::{NodeId, Sim, SimTime};

use crate::api::SvmSystem;

/// One protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A page fault entered the protocol handler.
    Fault {
        /// Faulting node.
        node: NodeId,
        /// Faulting page.
        page: PageNum,
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// First touch placed a chunk.
    Place {
        /// New home node.
        node: NodeId,
        /// First page of the placed chunk.
        base: PageNum,
    },
    /// A whole page was fetched from its home.
    Fetch {
        /// Requesting node.
        node: NodeId,
        /// Fetched page.
        page: PageNum,
        /// Home node serving the fetch.
        home: NodeId,
    },
    /// A diff was flushed to a remote home at a release.
    Diff {
        /// Releasing node.
        node: NodeId,
        /// Page whose dirty words were flushed.
        page: PageNum,
        /// Payload bytes.
        bytes: u64,
    },
    /// A cached copy was invalidated at an acquire.
    Invalidate {
        /// Node whose copy died.
        node: NodeId,
        /// Invalidated page.
        page: PageNum,
    },
    /// A chunk migrated to a new home (policy extension).
    Migrate {
        /// The new home.
        node: NodeId,
        /// First page of the migrated chunk.
        base: PageNum,
    },
}

impl TraceEvent {
    /// The bus representation (the record's `node` field carries the node).
    fn to_obs(self) -> obs::Event {
        match self {
            TraceEvent::Fault { page, write, .. } => obs::Event::Fault {
                page: page.index(),
                write,
            },
            TraceEvent::Place { base, .. } => obs::Event::Place { base: base.index() },
            TraceEvent::Fetch { page, home, .. } => obs::Event::Fetch {
                page: page.index(),
                home: home.0,
            },
            TraceEvent::Diff { page, bytes, .. } => obs::Event::Diff {
                page: page.index(),
                bytes,
            },
            TraceEvent::Invalidate { page, .. } => obs::Event::Invalidate { page: page.index() },
            TraceEvent::Migrate { base, .. } => obs::Event::Migrate { base: base.index() },
        }
    }

    /// Reconstructs the legacy shape from a bus record.
    fn from_obs(node: NodeId, e: &obs::Event) -> TraceEvent {
        match *e {
            obs::Event::Fault { page, write } => TraceEvent::Fault {
                node,
                page: PageNum::new(page),
                write,
            },
            obs::Event::Place { base } => TraceEvent::Place {
                node,
                base: PageNum::new(base),
            },
            obs::Event::Fetch { page, home } => TraceEvent::Fetch {
                node,
                page: PageNum::new(page),
                home: NodeId(home),
            },
            obs::Event::Diff { page, bytes } => TraceEvent::Diff {
                node,
                page: PageNum::new(page),
                bytes,
            },
            obs::Event::Invalidate { page } => TraceEvent::Invalidate {
                node,
                page: PageNum::new(page),
            },
            obs::Event::Migrate { base } => TraceEvent::Migrate {
                node,
                base: PageNum::new(base),
            },
            ref other => unreachable!("non-protocol event in trace drain: {:?}", other),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Fault { node, page, write } => {
                write!(f, "fault {} {} {}", node, page, if *write { "W" } else { "R" })
            }
            TraceEvent::Place { node, base } => write!(f, "place {node} chunk@{base}"),
            TraceEvent::Fetch { node, page, home } => {
                write!(f, "fetch {node} <- {home} {page}")
            }
            TraceEvent::Diff { node, page, bytes } => {
                write!(f, "diff {node} {page} {bytes}B")
            }
            TraceEvent::Invalidate { node, page } => write!(f, "inval {node} {page}"),
            TraceEvent::Migrate { node, base } => write!(f, "migrate -> {node} chunk@{base}"),
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Historical retention cap of the old ring buffer. Kept for API
/// compatibility; the bus's (larger) capacity now governs, and overflow is
/// counted in `dropped_events` instead of evicting old records.
pub const TRACE_CAP: usize = 65_536;

impl SvmSystem {
    /// Enables or disables protocol tracing (the legacy channel of the
    /// observability bus: protocol instants only, no metrics).
    pub fn set_tracing(&self, on: bool) {
        self.cluster.obs.set_proto_trace(on);
    }

    /// Drains and returns the recorded events (oldest first).
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        self.cluster
            .obs
            .take_proto_events()
            .into_iter()
            .map(|r| TraceRecord {
                at: r.at,
                event: TraceEvent::from_obs(r.node, &r.event),
            })
            .collect()
    }

    pub(crate) fn trace(&self, sim: &Sim, event: TraceEvent) {
        let o = &self.cluster.obs;
        if !o.proto_on() {
            return;
        }
        o.instant(
            obs::Layer::Proto,
            sim.node(),
            sim.tid().0,
            sim.now(),
            event.to_obs(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let e = TraceEvent::Fetch {
            node: NodeId(1),
            page: PageNum::new(7),
            home: NodeId(0),
        };
        assert_eq!(e.to_string(), "fetch n1 <- n0 p7");
        let e = TraceEvent::Fault {
            node: NodeId(2),
            page: PageNum::new(3),
            write: true,
        };
        assert_eq!(e.to_string(), "fault n2 p3 W");
    }

    #[test]
    fn obs_round_trip_preserves_event() {
        let events = [
            TraceEvent::Fault {
                node: NodeId(2),
                page: PageNum::new(3),
                write: true,
            },
            TraceEvent::Place {
                node: NodeId(0),
                base: PageNum::new(16),
            },
            TraceEvent::Diff {
                node: NodeId(1),
                page: PageNum::new(9),
                bytes: 128,
            },
            TraceEvent::Migrate {
                node: NodeId(3),
                base: PageNum::new(32),
            },
        ];
        for e in events {
            let node = match e {
                TraceEvent::Fault { node, .. }
                | TraceEvent::Place { node, .. }
                | TraceEvent::Fetch { node, .. }
                | TraceEvent::Diff { node, .. }
                | TraceEvent::Invalidate { node, .. }
                | TraceEvent::Migrate { node, .. } => node,
            };
            assert_eq!(TraceEvent::from_obs(node, &e.to_obs()), e);
        }
    }
}
