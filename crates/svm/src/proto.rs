//! The home-based release-consistency memory protocol.
//!
//! One engine implements both systems of the paper:
//!
//! - **Base (GeNIMA)**: first-touch homes bound at page (4 KB) granularity;
//!   contiguous same-home pages are registered as runs, so irregular
//!   placement consumes NIC region entries (which is what keeps OCEAN from
//!   running on 32 processors in the paper).
//! - **CableS**: homes bound by remapping home frames into the application
//!   address space, which WindowsNT only allows at 64 KB granularity — the
//!   first toucher of any page in a chunk becomes home of the *whole*
//!   chunk. Home frames extend one contiguous per-node region (the double
//!   virtual mapping), so NIC registration pressure stays constant.
//!
//! Consistency: writers track dirty words per page (the software-MMU
//! analogue of twin/diff); at a release the dirty words are remote-written
//! to the home and a write notice `(page, version)` is appended to the
//! global interval log; at an acquire a node applies all notices it has
//! not yet seen, invalidating stale copies. This is slightly *eager*
//! compared to lazy release consistency (notices propagate on every
//! acquire, not just along happens-before chains), which is conservative:
//! data-race-free programs see identical values and at worst extra
//! invalidations.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use chaos::ChaosEngine;
use memsim::{FaultKind, GAddr, PageNum, Prot, Scalar, PAGE_SIZE};
use sim::{NodeId, Scope, Sim, SimTime, Tid};
use vmmc::{RegionId, VmmcError};

use crate::api::SvmSystem;
use crate::config::{PlacementPolicy, ProtoMode};

pub(crate) const WORDS_PER_PAGE: usize = (PAGE_SIZE / 8) as usize;
pub(crate) const BITMAP_WORDS: usize = WORDS_PER_PAGE / 64;

/// Base of the heap portion of the shared virtual address space.
pub const HEAP_BASE: GAddr = GAddr::new(0x4000_0000);
/// Base of the GLOBAL static-data section (maps the paper's
/// `GLOBAL_DATA` executable section).
pub const GLOBAL_SECTION_BASE: GAddr = GAddr::new(0x1000_0000);
/// Size of the GLOBAL static-data section.
pub const GLOBAL_SECTION_BYTES: u64 = 4 << 20;

#[derive(Debug)]
pub(crate) struct PageDir {
    pub home: NodeId,
    pub version: u64,
    pub region: RegionId,
    pub region_off: u64,
    pub first_writer: Option<NodeId>,
    pub multi_writer: bool,
    /// Demand fetches served for this page; the lock-forwarding hotness
    /// signal (kept in the protocol directory, not the obs sharing table,
    /// so behaviour never depends on whether observability is enabled).
    pub hot: u32,
}

#[derive(Debug)]
pub(crate) struct CopyState {
    pub version: u64,
    /// Dirty 8-byte-word bitmap; present iff the page is locally writable.
    pub dirty: Option<Box<[u64; BITMAP_WORDS]>>,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
/// Per-node protocol event counters.
pub struct NodeStats {
    /// Read faults taken.
    pub read_faults: u64,
    /// Write faults taken.
    pub write_faults: u64,
    /// Whole-page fetches from remote homes.
    pub remote_fetches: u64,
    /// Bytes fetched from remote homes.
    pub fetch_bytes: u64,
    /// Diffs sent to remote homes at releases.
    pub diffs_sent: u64,
    /// Diff payload bytes sent.
    pub diff_bytes: u64,
    /// Write notices applied at acquires.
    pub notices_applied: u64,
    /// Placements performed (chunks homed here).
    pub placements: u64,
    /// Chunks migrated to this node by the migration policy.
    pub migrations: u64,
    /// Lock acquires by threads of this node.
    pub lock_acquires: u64,
    /// Barrier episodes joined by threads of this node.
    pub barrier_waits: u64,
    /// Batched release diffs shipped (one per home per release with diff
    /// batching on; always zero with it off).
    pub diff_batches: u64,
    /// Payload bytes that travelled inside batched diffs.
    pub batched_diff_bytes: u64,
    /// Pages fetched ahead of demand by the stride prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched pages later consumed by a local fault (a fault that
    /// needed no new message).
    pub prefetch_hits: u64,
    /// Prefetched pages invalidated by acquire-time notices before use.
    pub prefetch_wasted: u64,
    /// Lock grants that carried forwarded page contents (one per home per
    /// grant).
    pub lock_forwards: u64,
    /// Page-content bytes refreshed by lock-data forwarding.
    pub lock_forward_bytes: u64,
    /// Ping-pong handoffs this node completed: remote fetch/diff messages
    /// on a chunk whose previous remote toucher was a different node (the
    /// false-sharing smell, charged to the node whose touch completed the
    /// handoff). Counted only while the counter placement policy is on.
    pub pingpong_handoffs: u64,
    /// Release-time migration decisions the counter policy evaluated for
    /// chunks homed remotely from this node.
    pub policy_considered: u64,
    /// Migrations the counter policy triggered to this node (a subset of
    /// `migrations`, which also counts streak-policy moves).
    pub policy_migrations: u64,
}

#[derive(Debug, Default)]
pub(crate) struct NodeProto {
    pub copies: HashMap<u64, CopyState>,
    pub dirty_pages: Vec<u64>,
    pub seg_cache: HashMap<u64, ()>,
    pub imported: HashMap<u64, ()>,
    pub log_cursor: usize,
    /// Stride detectors over this node's demand-fault stream, one per
    /// faulting thread — two CPUs interleaving sequential scans would
    /// otherwise shred each other's runs:
    /// `tid → (last demand page, stride in pages, same-stride streak)`.
    pub stride: HashMap<u64, (u64, i64, u32)>,
    /// Pages installed by the prefetcher and not yet consumed or
    /// invalidated, with the simulated time their bytes finish streaming
    /// in (cut-through delivery: a consumer faulting earlier must wait
    /// out the remainder).
    pub prefetched: HashMap<u64, SimTime>,
    pub stats: NodeStats,
}

#[derive(Debug)]
pub(crate) struct LockState {
    pub manager: NodeId,
    pub holder: Option<Tid>,
    pub holder_node: Option<NodeId>,
    pub waiters: VecDeque<(Tid, NodeId)>,
    pub acquired_from: HashMap<u32, ()>,
}

#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    pub count: usize,
    pub waiters: Vec<(Tid, NodeId)>,
    pub max_arrival: SimTime,
    /// Membership of the current episode, recorded on every arrival so a
    /// crash recovery can release the barrier when the survivors plus the
    /// crashed-thread discount cover it.
    pub expected: usize,
}

/// Per-chunk sharing counters backing the counter-driven placement
/// policy: the `obs::sharing` taxonomy (sharer set, per-node traffic,
/// ping-pong handoffs) maintained incrementally in the protocol, so the
/// policy works with observability off. Only populated while
/// `SvmConfig::placement_policy` is set; the map is indexed, never
/// iterated, so decisions stay deterministic.
#[derive(Debug)]
pub(crate) struct ChunkSharing {
    /// Bitmask of nodes that generated remote traffic on the chunk
    /// (node `i` sets bit `min(i, 63)`).
    pub sharers: u64,
    /// Remote fetch+diff messages per node since the last (re)homing.
    pub traffic: Vec<u32>,
    /// Last remote node to touch the chunk (ping-pong detector).
    pub last_node: Option<NodeId>,
    /// Remote touches whose node differed from the previous toucher.
    pub handoffs: u32,
    /// Release-time considerations since the last migration; starts
    /// saturated so a fresh chunk is never in cooldown.
    pub cooldown: u32,
}

impl ChunkSharing {
    fn new(nodes: usize) -> Self {
        ChunkSharing {
            sharers: 0,
            traffic: vec![0; nodes],
            last_node: None,
            handoffs: 0,
            cooldown: u32::MAX,
        }
    }
}

#[derive(Debug)]
pub(crate) struct ProtoState {
    pub dir: HashMap<u64, PageDir>,
    pub nodes: Vec<NodeProto>,
    /// Global interval log of write notices `(page, version)`.
    pub log: Vec<(u64, u64)>,
    /// CableS mode: the single growing home region per node, with its
    /// current length in bytes.
    pub home_region: Vec<Option<(RegionId, u64)>>,
    pub first_toucher: HashMap<u64, NodeId>,
    /// Migration policy state: chunk -> (last sole remote differ, streak).
    pub diff_streaks: HashMap<u64, (NodeId, u32)>,
    /// Counter-policy state: chunk -> incremental sharing counters.
    pub chunk_sharing: HashMap<u64, ChunkSharing>,
    /// Demand fetches each node has served as home — the thread-affinity
    /// placement hint (maintained unconditionally; one add per remote
    /// fetch, never branched on by the protocol itself).
    pub home_pull: Vec<u64>,
    pub alloc_next: u64,
    pub alloc_ranges: Vec<(u64, u64)>,
    pub locks: HashMap<u64, LockState>,
    pub barriers: HashMap<u64, BarrierState>,
    pub next_proc: usize,
    pub created: Vec<Tid>,
}

impl ProtoState {
    pub fn new(nodes: usize) -> Self {
        ProtoState {
            dir: HashMap::new(),
            nodes: (0..nodes).map(|_| NodeProto::default()).collect(),
            log: Vec::new(),
            home_region: vec![None; nodes],
            first_toucher: HashMap::new(),
            diff_streaks: HashMap::new(),
            chunk_sharing: HashMap::new(),
            home_pull: vec![0; nodes],
            alloc_next: HEAP_BASE.raw(),
            alloc_ranges: Vec::new(),
            locks: HashMap::new(),
            barriers: HashMap::new(),
            next_proc: 1,
            created: Vec::new(),
        }
    }

    /// Charges one remote fetch/diff message from `node` to `chunk`'s
    /// sharing counters (counter-policy feed; callers gate on the policy
    /// being enabled). A touch whose node differs from the previous
    /// toucher is a ping-pong handoff, charged to the toucher's stats.
    pub fn note_chunk_traffic(&mut self, node: NodeId, chunk: u64) {
        let nodes = self.nodes.len();
        let cs = self
            .chunk_sharing
            .entry(chunk)
            .or_insert_with(|| ChunkSharing::new(nodes));
        cs.sharers |= 1 << node.0.min(63);
        let i = node.0 as usize;
        if i >= cs.traffic.len() {
            cs.traffic.resize(i + 1, 0);
        }
        cs.traffic[i] = cs.traffic[i].saturating_add(1);
        match cs.last_node {
            Some(prev) if prev != node => {
                cs.handoffs = cs.handoffs.saturating_add(1);
                self.nodes[i].stats.pingpong_handoffs += 1;
            }
            _ => {}
        }
        cs.last_node = Some(node);
    }
}

/// Typed failure of a NIC registration-class protocol operation.
///
/// Without a chaos engine attached these surface as panics with the same
/// text the original implementation used (the paper's §3.4 failure mode:
/// the base system cannot run OCEAN on 32 processors; the bench harness
/// reports such runs as failed). With chaos armed the protocol first runs
/// a bounded deregister-and-retry recovery — evicting cold imported
/// regions to free NIC resources — and only surfaces
/// [`ProtoError::Exhausted`] when the failure persists through every
/// attempt (genuine, not injected, exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The underlying VMMC operation failed and no recovery was armed.
    Vmmc {
        /// Which protocol step failed (doubles as the legacy panic text).
        what: &'static str,
        /// The VMMC failure.
        source: VmmcError,
    },
    /// Recovery ran out of attempts.
    Exhausted {
        /// Which protocol step failed.
        what: &'static str,
        /// Recovery attempts performed.
        attempts: u32,
        /// The last VMMC failure observed.
        last: VmmcError,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Vmmc { what, source } => write!(f, "{what}: {source}"),
            ProtoError::Exhausted {
                what,
                attempts,
                last,
            } => write!(
                f,
                "{what}: still failing after {attempts} recovery attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Vmmc { source, .. } => Some(source),
            ProtoError::Exhausted { last, .. } => Some(last),
        }
    }
}

/// Bounded attempts of the registration-recovery loop.
pub(crate) const REG_RETRY_ATTEMPTS: u32 = 6;
/// Base backoff of the registration-recovery loop, ns (doubles per try).
pub(crate) const REG_RETRY_BASE_NS: u64 = 20_000;

/// Placement quality of a finished run (paper Fig. 6).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PlacementReport {
    /// Shared pages that were touched during the run.
    pub touched_pages: u64,
    /// Pages whose home is not their first toucher (misplaced).
    pub misplaced_pages: u64,
}

impl PlacementReport {
    /// Misplaced pages as a percentage of touched pages.
    pub fn misplaced_pct(&self) -> f64 {
        if self.touched_pages == 0 {
            0.0
        } else {
            self.misplaced_pages as f64 * 100.0 / self.touched_pages as f64
        }
    }
}

impl SvmSystem {
    /// Handles a simulated page fault: placement on first touch, page
    /// fetch from a remote home, or a write upgrade.
    ///
    /// # Panics
    ///
    /// Panics if a NIC registration limit is exceeded — this mirrors the
    /// paper's base system failing to run OCEAN on 32 processors; the
    /// benchmark harness reports such runs as failed.
    pub(crate) fn handle_fault(&self, sim: &Sim, page: PageNum, kind: FaultKind) {
        let node = sim.node();
        let t0 = sim.now();
        // Advance the streaming-series clock at fault entry (no-op unless
        // a series is running; recording charges no simulated time).
        if let Some(o) = self.obs_if_on() {
            o.series_tick(t0);
        }
        // Declared footprint of the fault: the faulting node, the page's
        // home and the directory master. A page without a home yet goes
        // through placement, which updates the global first-touch
        // directory — conservatively everything. The peek races ahead of
        // the ordering point, but scopes are telemetry/audit only and this
        // one always covers the executing node (see `sim::Scope`).
        let scope = {
            let st = self.state.lock();
            match st.dir.get(&page.index()).map(|d| d.home) {
                Some(h) => Scope::node(node).with(h).with(self.master),
                None => Scope::ALL,
            }
        };
        // OS fault entry + protocol handler, ordered against other ops.
        sim.advance(self.cluster.mem.config().fault_overhead_ns);
        sim.op_point_scoped(self.cfg.costs.fault_handler_ns, scope);

        // First-touch attribution happens at fault order (the paper's
        // placement policy binds on the touch, not on handler completion).
        {
            let mut st = self.state.lock();
            st.first_toucher.entry(page.index()).or_insert(node);
        }

        // Another thread of this node may have serviced the same fault
        // while we waited at the ordering point; if the page is already
        // accessible, re-fetching would clobber its locally dirty words.
        if let Some((_, prot)) = self.cluster.mem.translate(node, page) {
            let satisfied = match kind {
                FaultKind::Read => prot != Prot::None,
                FaultKind::Write => prot == Prot::ReadWrite,
            };
            if satisfied {
                return;
            }
        }

        {
            let mut st = self.state.lock();
            match kind {
                FaultKind::Read => st.nodes[node.0 as usize].stats.read_faults += 1,
                FaultKind::Write => st.nodes[node.0 as usize].stats.write_faults += 1,
            }
        }
        self.trace(
            sim,
            crate::trace::TraceEvent::Fault {
                node,
                page,
                write: kind == FaultKind::Write,
            },
        );

        self.owner_detect(sim, page);

        let home = {
            let st = self.state.lock();
            st.dir.get(&page.index()).map(|d| d.home)
        };
        match home {
            None => self.place_chunk(sim, page, kind),
            Some(h) if h == node => self.home_upgrade(sim, page, kind),
            Some(h) => self.fetch_page(sim, page, h, kind),
        }
        if let Some(o) = self.obs_if_on() {
            o.span(
                obs::Layer::Proto,
                node,
                sim.tid().0,
                t0,
                sim.now().saturating_since(t0),
                obs::Event::FaultSpan {
                    page: page.index(),
                    write: kind == FaultKind::Write,
                },
            );
        }
    }

    /// The attached chaos engine, when it can inject anything at all.
    #[inline]
    pub(crate) fn chaos_armed(&self) -> Option<&ChaosEngine> {
        match self.cluster.chaos() {
            Some(c) if c.armed() => Some(c),
            _ => None,
        }
    }

    /// Evicts one cold imported region from `node`'s NIC to free a
    /// registration slot (never `protect`, which the caller is using).
    /// The victim is the lowest-numbered import so replay is
    /// deterministic. Returns whether a victim existed.
    fn evict_one_import(
        &self,
        sim: &Sim,
        node: NodeId,
        protect: Option<RegionId>,
        ch: &ChaosEngine,
    ) -> bool {
        let victim = {
            let st = self.state.lock();
            st.nodes[node.0 as usize]
                .imported
                .keys()
                .copied()
                .filter(|r| Some(*r) != protect.map(|p| p.0))
                .min()
        };
        let Some(victim) = victim else {
            return false;
        };
        {
            let mut st = self.state.lock();
            st.nodes[node.0 as usize].imported.remove(&victim);
        }
        // The lazy-import paths re-import on the next touch, so dropping
        // a cold import costs latency, never data.
        let _ = self.cluster.vmmc.unimport_region(node, RegionId(victim));
        ch.note_eviction();
        if let Some(o) = self.obs_if_on() {
            o.instant(
                obs::Layer::Chaos,
                node,
                sim.tid().0,
                sim.now(),
                obs::Event::ChaosEvict { region: victim },
            );
        }
        true
    }

    /// Runs a registration-class VMMC operation with recovery.
    ///
    /// Without chaos the operation runs exactly once and a failure is the
    /// caller's to surface (legacy §3.4 semantics). With chaos armed the
    /// operation is retried with exponential backoff, evicting one cold
    /// import per retry after the first, so transient (injected) NIC
    /// pressure degrades the run instead of killing it.
    fn reg_op<T>(
        &self,
        sim: &Sim,
        node: NodeId,
        what: &'static str,
        protect: Option<RegionId>,
        mut f: impl FnMut() -> Result<T, VmmcError>,
    ) -> Result<T, ProtoError> {
        let first = match f() {
            Ok(v) => return Ok(v),
            Err(e) => e,
        };
        let Some(ch) = self.chaos_armed() else {
            return Err(ProtoError::Vmmc {
                what,
                source: first,
            });
        };
        let t_fail = sim.now();
        if let Some(o) = self.obs_if_on() {
            o.instant(
                obs::Layer::Chaos,
                node,
                sim.tid().0,
                t_fail,
                obs::Event::ChaosResourceFault { op: what },
            );
        }
        let mut last = first;
        for attempt in 1..=REG_RETRY_ATTEMPTS {
            let backoff = REG_RETRY_BASE_NS << (attempt - 1);
            if let Some(o) = self.obs_if_on() {
                o.span(
                    obs::Layer::Chaos,
                    node,
                    sim.tid().0,
                    sim.now(),
                    backoff,
                    obs::Event::ChaosRetry {
                        attempt: attempt as u64,
                        backoff_ns: backoff,
                    },
                );
            }
            ch.note_retry();
            sim.advance(backoff);
            if attempt > 1 {
                self.evict_one_import(sim, node, protect, ch);
            }
            match f() {
                Ok(v) => {
                    if let Some(o) = self.obs_if_on() {
                        o.edge(
                            obs::EdgeKind::Recovery,
                            node,
                            sim.tid().0,
                            t_fail,
                            node,
                            sim.tid().0,
                            sim.now(),
                            attempt as u64,
                        );
                    }
                    return Ok(v);
                }
                Err(e) => last = e,
            }
        }
        Err(ProtoError::Exhausted {
            what,
            attempts: REG_RETRY_ATTEMPTS,
            last,
        })
    }

    /// A remote fetch that survives a concurrently evicted import: with
    /// chaos armed, `NotImported` re-imports (itself recovered) and
    /// retries; everything else is a protocol invariant violation.
    fn fetch_with_recovery(
        &self,
        sim: &Sim,
        node: NodeId,
        what: &'static str,
        region: RegionId,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<u8>, SimTime), ProtoError> {
        loop {
            match self
                .cluster
                .vmmc
                .remote_fetch(node, region, offset, len, sim.now())
            {
                Ok(v) => return Ok(v),
                Err(VmmcError::NotImported { .. }) if self.chaos_armed().is_some() => {
                    {
                        let mut st = self.state.lock();
                        st.nodes[node.0 as usize].imported.insert(region.0, ());
                    }
                    self.reg_op(sim, node, what, Some(region), || {
                        self.cluster.vmmc.import_region(node, region)
                    })?;
                    sim.advance(self.cluster.vmmc.config().import_op_ns);
                }
                Err(e) => return Err(ProtoError::Vmmc { what, source: e }),
            }
        }
    }

    /// The remote-write analogue of [`SvmSystem::fetch_with_recovery`]
    /// (diff flushes racing an import eviction).
    fn write_with_recovery(
        &self,
        sim: &Sim,
        node: NodeId,
        what: &'static str,
        region: RegionId,
        offset: u64,
        data: &[u8],
    ) -> Result<san::SendTiming, ProtoError> {
        loop {
            match self
                .cluster
                .vmmc
                .remote_write(node, region, offset, data, sim.now())
            {
                Ok(t) => return Ok(t),
                Err(VmmcError::NotImported { .. }) if self.chaos_armed().is_some() => {
                    {
                        let mut st = self.state.lock();
                        st.nodes[node.0 as usize].imported.insert(region.0, ());
                    }
                    self.reg_op(sim, node, what, Some(region), || {
                        self.cluster.vmmc.import_region(node, region)
                    })?;
                    sim.advance(self.cluster.vmmc.config().import_op_ns);
                }
                Err(e) => return Err(ProtoError::Vmmc { what, source: e }),
            }
        }
    }

    /// Batched analogue of [`SvmSystem::fetch_with_recovery`]: several
    /// segments of one region in a single SAN round trip. A concurrently
    /// evicted import re-imports and retries the whole batch — reads are
    /// idempotent, and the batch is one message for chaos purposes, so a
    /// replay sees exactly one wire outcome per attempt.
    fn fetch_multi_with_recovery(
        &self,
        sim: &Sim,
        node: NodeId,
        what: &'static str,
        region: RegionId,
        segs: &[(u64, u64)],
    ) -> Result<(Vec<Vec<u8>>, Vec<SimTime>), ProtoError> {
        loop {
            match self
                .cluster
                .vmmc
                .remote_fetch_multi(node, region, segs, sim.now())
            {
                Ok(v) => return Ok(v),
                Err(VmmcError::NotImported { .. }) if self.chaos_armed().is_some() => {
                    {
                        let mut st = self.state.lock();
                        st.nodes[node.0 as usize].imported.insert(region.0, ());
                    }
                    self.reg_op(sim, node, what, Some(region), || {
                        self.cluster.vmmc.import_region(node, region)
                    })?;
                    sim.advance(self.cluster.vmmc.config().import_op_ns);
                }
                Err(e) => return Err(ProtoError::Vmmc { what, source: e }),
            }
        }
    }

    /// Batched analogue of [`SvmSystem::write_with_recovery`] (a whole
    /// per-home diff batch racing an import eviction). The batch either
    /// applies completely or — on `NotImported` — not at all, so the retry
    /// never double-applies a prefix.
    fn write_multi_with_recovery(
        &self,
        sim: &Sim,
        node: NodeId,
        what: &'static str,
        region: RegionId,
        segs: &[(u64, Vec<u8>)],
        issue: SimTime,
    ) -> Result<san::SendTiming, ProtoError> {
        loop {
            match self
                .cluster
                .vmmc
                .remote_write_multi(node, region, segs, issue.min(sim.now()))
            {
                Ok(t) => return Ok(t),
                Err(VmmcError::NotImported { .. }) if self.chaos_armed().is_some() => {
                    {
                        let mut st = self.state.lock();
                        st.nodes[node.0 as usize].imported.insert(region.0, ());
                    }
                    self.reg_op(sim, node, what, Some(region), || {
                        self.cluster.vmmc.import_region(node, region)
                    })?;
                    sim.advance(self.cluster.vmmc.config().import_op_ns);
                }
                Err(e) => return Err(ProtoError::Vmmc { what, source: e }),
            }
        }
    }

    /// Directory lookup with per-node caching ("segment owner detect").
    fn owner_detect(&self, sim: &Sim, page: PageNum) {
        let node = sim.node();
        // In the base system placement is static and broadcast at
        // registration time, so lookups are always local.
        if self.cfg.mode == ProtoMode::Base {
            sim.advance(1_000);
            return;
        }
        let chunk = page.chunk(self.cfg.home_granularity_pages);
        let mut st = self.state.lock();
        if st.nodes[node.0 as usize]
            .seg_cache
            .insert(chunk, ())
            .is_none()
        {
            // First lookup of this segment's entry.
            drop(st);
            if node == self.master {
                sim.advance(1_000);
            } else {
                // Fetch the directory entry from the master (ACB owner).
                let done = self
                    .cluster
                    .san
                    .fetch(node, self.master, 32, sim.now());
                sim.clock_at_least(done);
                sim.advance(1_000);
            }
        } else {
            sim.advance(1_000);
        }
    }

    /// First touch: the faulting node becomes home of the whole placement
    /// chunk (1 page for base, 16 pages / 64 KB for CableS-on-NT).
    fn place_chunk(&self, sim: &Sim, page: PageNum, kind: FaultKind) {
        let node = sim.node();
        let gran = self.cfg.home_granularity_pages;
        let base = page.chunk_base(gran);
        let os = self.cluster.mem.config().clone();

        // Allocate home frames. Invariant: reachable only on genuine
        // physical-frame exhaustion (the workloads are sized within node
        // memory and chaos never injects here), so this stays fatal.
        let mut frames = Vec::with_capacity(gran as usize);
        for _ in 0..gran {
            let f = self
                .cluster
                .mem
                .alloc_frame(node)
                .unwrap_or_else(|e| panic!("home frame allocation failed: {e}"));
            frames.push(f);
        }
        sim.advance(os.frame_alloc_ns * gran);

        // Register with the NIC.
        let mut register_cost = self.cluster.vmmc.config().register_op_ns;
        let mut new_region = None;
        let (region, base_off) = match self.cfg.mode {
            ProtoMode::Cables => {
                // Double virtual mapping: extend the node's single home
                // region, keeping one NIC registration.
                let st = self.state.lock();
                let entry = st.home_region[node.0 as usize];
                drop(st);
                let (region, off) = match entry {
                    Some((r, len)) => {
                        self.reg_op(sim, node, "home region extension failed", Some(r), || {
                            self.cluster.vmmc.extend_region(r, frames.clone())
                        })
                        .unwrap_or_else(|e| panic!("{e}"));
                        register_cost = self.cluster.vmmc.config().extend_op_ns;
                        (r, len)
                    }
                    None => {
                        let r = self
                            .reg_op(sim, node, "home region export failed", None, || {
                                self.cluster.vmmc.export_region(node, frames.clone())
                            })
                            .unwrap_or_else(|e| panic!("{e}"));
                        (r, 0)
                    }
                };
                let mut st = self.state.lock();
                st.home_region[node.0 as usize] =
                    Some((region, off + gran * PAGE_SIZE));
                (region, off)
            }
            ProtoMode::Base => {
                // Per-run registration: extend the run ending at page-1 if
                // it has the same home, else start a new region.
                let prev = {
                    let st = self.state.lock();
                    st.dir.get(&(base.index().wrapping_sub(1))).map(|d| {
                        (d.home, d.region, d.region_off)
                    })
                };
                match prev {
                    Some((h, r, off))
                        if h == node
                            && self
                                .cluster
                                .vmmc
                                .region_pages(r)
                                .map(|p| (p as u64 - 1) * PAGE_SIZE == off)
                                .unwrap_or(false) =>
                    {
                        self.reg_op(sim, node, "run extension failed", Some(r), || {
                            self.cluster.vmmc.extend_region(r, frames.clone())
                        })
                        .unwrap_or_else(|e| panic!("{e}"));
                        register_cost = self.cluster.vmmc.config().extend_op_ns;
                        (r, off + PAGE_SIZE)
                    }
                    _ => {
                        let r = self
                            .reg_op(
                                sim,
                                node,
                                "registration failed (paper §3.4 OCEAN regime)",
                                None,
                                || self.cluster.vmmc.export_region(node, frames.clone()),
                            )
                            .unwrap_or_else(|e| panic!("{e}"));
                        new_region = Some(r);
                        (r, 0)
                    }
                }
            }
        };
        sim.advance(register_cost);

        // In the base system every other node registers each newly
        // exported region with its NIC at creation time (paper §2.1.3:
        // "Every other node in the system registers the newly allocated
        // virtual memory region with the NIC") — this is what exhausts
        // NIC region entries on irregular placements (OCEAN, §3.4).
        if let (ProtoMode::Base, Some(r)) = (self.cfg.mode, new_region) {
            for other in self.cluster.nodes() {
                if *other != node {
                    self.reg_op(
                        sim,
                        *other,
                        "registration failed (paper §3.4 OCEAN regime)",
                        Some(r),
                        || self.cluster.vmmc.import_region(*other, r),
                    )
                    .unwrap_or_else(|e| panic!("{e}"));
                }
            }
            // Announce the new region to the cluster.
            if node != self.master {
                let t = self.cluster.san.send(node, self.master, 32, sim.now());
                sim.clock_at_least(t.local_done);
            }
        }

        // Map the chunk into the application address space. All pages
        // start inaccessible so later first touches are observable.
        match self.cfg.mode {
            ProtoMode::Cables => {
                self.cluster
                    .mem
                    .map_chunk(node, base, &frames, Prot::None)
                    .expect("chunk-aligned mapping");
                sim.advance(os.map_op_ns);
            }
            ProtoMode::Base => {
                for (i, f) in frames.iter().enumerate() {
                    self.cluster
                        .mem
                        .map_page(node, PageNum::new(base.index() + i as u64), *f, Prot::None);
                }
                sim.advance(os.map_op_ns);
            }
        }

        // Directory update (on the master / ACB owner).
        {
            let mut st = self.state.lock();
            for i in 0..gran {
                st.dir.insert(
                    base.index() + i,
                    PageDir {
                        home: node,
                        version: 0,
                        region,
                        region_off: base_off + i * PAGE_SIZE,
                        first_writer: None,
                        multi_writer: false,
                        hot: 0,
                    },
                );
                st.nodes[node.0 as usize]
                    .copies
                    .insert(base.index() + i, CopyState {
                        version: 0,
                        dirty: None,
                    });
            }
            st.nodes[node.0 as usize].stats.placements += 1;
        }
        self.trace(sim, crate::trace::TraceEvent::Place { node, base });
        sim.op_point(self.cfg.costs.placement_bookkeeping_ns);
        if node != self.master {
            // Publish the new entry to the global directory.
            let t = self.cluster.san.send(node, self.master, 64, sim.now());
            sim.clock_at_least(t.local_done);
        }

        // Finally grant the faulting access on the faulting page.
        self.home_upgrade(sim, page, kind);
    }

    /// Grants access on a page homed at the faulting node (either the
    /// just-placed chunk or a later first touch of a chunk sibling).
    fn home_upgrade(&self, sim: &Sim, page: PageNum, kind: FaultKind) {
        let node = sim.node();
        let os_protect = self.cluster.mem.config().protect_ns;
        {
            let mut st = self.state.lock();
            let d = st.dir.get_mut(&page.index()).expect("home page in dir");
            match kind {
                FaultKind::Read => {
                    drop(st);
                    self.cluster
                        .mem
                        .set_prot(node, page, Prot::Read)
                        .expect("home page mapped");
                }
                FaultKind::Write => {
                    match d.first_writer {
                        None => d.first_writer = Some(node),
                        Some(w) if w != node => d.multi_writer = true,
                        _ => {}
                    }
                    let np = &mut st.nodes[node.0 as usize];
                    let copy = np.copies.entry(page.index()).or_insert(CopyState {
                        version: 0,
                        dirty: None,
                    });
                    if copy.dirty.is_none() {
                        copy.dirty = Some(Box::new([0; BITMAP_WORDS]));
                        np.dirty_pages.push(page.index());
                    }
                    drop(st);
                    self.cluster
                        .mem
                        .set_prot(node, page, Prot::ReadWrite)
                        .expect("home page mapped");
                }
            }
        }
        sim.advance(os_protect);
    }

    /// Fetches a page copy from its remote home.
    fn fetch_page(&self, sim: &Sim, page: PageNum, home: NodeId, kind: FaultKind) {
        let node = sim.node();
        let (region, region_off, version) = {
            let st = self.state.lock();
            let d = &st.dir[&page.index()];
            (d.region, d.region_off, d.version)
        };

        // Lazily import the home's region.
        let need_import = {
            let mut st = self.state.lock();
            st.nodes[node.0 as usize]
                .imported
                .insert(region.0, ())
                .is_none()
        };
        if need_import {
            self.reg_op(
                sim,
                node,
                "region import failed (paper §3.4 regime)",
                Some(region),
                || self.cluster.vmmc.import_region(node, region),
            )
            .unwrap_or_else(|e| panic!("{e}"));
            sim.advance(self.cluster.vmmc.config().import_op_ns);
        }

        // Local frame for the copy (normal page-granular OS paging).
        // Invariant: copies are evicted before node memory fills, so frame
        // exhaustion here is a simulator bug, not injectable pressure.
        let have_frame = self.cluster.mem.translate(node, page).is_some();
        if !have_frame {
            let f = self
                .cluster
                .mem
                .alloc_frame(node)
                .unwrap_or_else(|e| panic!("copy frame allocation failed: {e}"));
            self.cluster.mem.map_page(node, page, f, Prot::None);
            sim.advance(self.cluster.mem.config().frame_alloc_ns);
        }

        // A locally dirty copy must never be overwritten by a refetch —
        // its unflushed words would be lost. (Cannot happen after the
        // handler's re-check, but guard the invariant.)
        let (locally_dirty, copy_current) = {
            let st = self.state.lock();
            match st.nodes[node.0 as usize].copies.get(&page.index()) {
                Some(c) => (
                    c.dirty.is_some(),
                    st.dir
                        .get(&page.index())
                        .map(|d| c.version >= d.version)
                        .unwrap_or(false),
                ),
                None => (false, false),
            }
        };
        assert!(
            !locally_dirty,
            "refetch of a locally dirty page {page} on {node}"
        );

        // A write upgrade on a current clean copy needs no data transfer:
        // only the protection changes (and dirty tracking starts).
        if copy_current && kind == FaultKind::Write && have_frame {
            let t_masked = sim.now();
            let mut masked = false;
            let mut st = self.state.lock();
            let np = &mut st.nodes[node.0 as usize];
            if let Some(install) = np.prefetched.remove(&page.index()) {
                np.stats.prefetch_hits += 1;
                masked = true;
                drop(st);
                // Wait out the tail of the streaming batch if the bytes
                // have not landed yet.
                sim.clock_at_least(install);
                st = self.state.lock();
            }
            let np = &mut st.nodes[node.0 as usize];
            let copy = np.copies.get_mut(&page.index()).expect("current copy");
            if copy.dirty.is_none() {
                copy.dirty = Some(Box::new([0; BITMAP_WORDS]));
                np.dirty_pages.push(page.index());
            }
            {
                let d = st.dir.get_mut(&page.index()).expect("dir entry");
                match d.first_writer {
                    None => d.first_writer = Some(node),
                    Some(w) if w != node => d.multi_writer = true,
                    _ => {}
                }
            }
            drop(st);
            self.cluster
                .mem
                .set_prot(node, page, Prot::ReadWrite)
                .expect("copy mapped");
            sim.advance(self.cluster.mem.config().protect_ns);
            if masked {
                if let Some(o) = self.obs_if_on() {
                    // Nested inside the enclosing FaultSpan: the stall
                    // profiler splits prefetch-masked stall out of the
                    // page-fault bucket from this span.
                    o.span(
                        obs::Layer::Proto,
                        node,
                        sim.tid().0,
                        t_masked,
                        sim.now().saturating_since(t_masked),
                        obs::Event::PrefetchMasked { page: page.index() },
                    );
                }
            }
            return;
        }

        // A read fault on a current clean copy needs no data transfer
        // either: this is a prefetched page being consumed. (Unreachable
        // with the prefetcher off — demand fetches always install a
        // readable protection directly — so the branch is gated to keep
        // the baseline path literally unchanged.)
        if copy_current && kind == FaultKind::Read && have_frame && self.cfg.prefetch_degree > 0 {
            let t_masked = sim.now();
            let install = {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                let install = np.prefetched.remove(&page.index());
                if install.is_some() {
                    np.stats.prefetch_hits += 1;
                }
                install
            };
            let masked = install.is_some();
            if let Some(t) = install {
                // Wait out the tail of the streaming batch if the bytes
                // have not landed yet.
                sim.clock_at_least(t);
            }
            self.cluster
                .mem
                .set_prot(node, page, Prot::Read)
                .expect("copy mapped");
            sim.advance(self.cluster.mem.config().protect_ns);
            if masked {
                if let Some(o) = self.obs_if_on() {
                    // Nested inside the enclosing FaultSpan: the stall
                    // profiler splits prefetch-masked stall out of the
                    // page-fault bucket from this span.
                    o.span(
                        obs::Layer::Proto,
                        node,
                        sim.tid().0,
                        t_masked,
                        sim.now().saturating_since(t_masked),
                        obs::Event::PrefetchMasked { page: page.index() },
                    );
                }
            }
            return;
        }

        // Stride detection over the demand-fault stream. On a confirmed
        // run, candidate pages from the same home region ride along with
        // the demand fetch as one multi-segment message.
        let mut prefetch: Vec<(u64, u64, u64)> = Vec::new(); // (page, region_off, version)
        if self.cfg.prefetch_degree > 0 {
            let idx = page.index();
            let tid = sim.tid().0;
            let st_entry = {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                let entry = match np.stride.get(&tid) {
                    Some(&(last, stride, streak)) => {
                        let d = idx as i64 - last as i64;
                        if d == 0 {
                            (idx, stride, streak)
                        } else if d == stride {
                            (idx, stride, streak.saturating_add(1))
                        } else {
                            (idx, d, 1)
                        }
                    }
                    None => (idx, 0, 0),
                };
                np.stride.insert(tid, entry);
                entry
            };
            let (_, stride, streak) = st_entry;
            if stride != 0 && streak >= self.cfg.prefetch_confirm {
                let st = self.state.lock();
                let np = &st.nodes[node.0 as usize];
                for k in 1..=self.cfg.prefetch_degree as i64 {
                    let cand = idx as i64 + stride * k;
                    if cand < 0 {
                        break;
                    }
                    let cand = cand as u64;
                    // Stop at directory or home-region boundaries; skip
                    // (but keep walking past) pages already usable here.
                    let Some(d) = st.dir.get(&cand) else { break };
                    if d.region != region || d.home == node {
                        break;
                    }
                    if let Some(c) = np.copies.get(&cand) {
                        if c.dirty.is_some() || c.version >= d.version {
                            continue;
                        }
                    }
                    prefetch.push((cand, d.region_off, d.version));
                }
            }
        }

        // Fetch the page contents from the home — batched with any
        // confirmed-stride prefetch candidates.
        let t_fetch = sim.now();
        let (data, done) = if prefetch.is_empty() {
            self.fetch_with_recovery(sim, node, "page fetch failed", region, region_off, PAGE_SIZE)
                .unwrap_or_else(|e| panic!("{e}"))
        } else {
            let mut segs = Vec::with_capacity(1 + prefetch.len());
            segs.push((region_off, PAGE_SIZE));
            segs.extend(prefetch.iter().map(|(_, off, _)| (*off, PAGE_SIZE)));
            let (mut all, times) = self
                .fetch_multi_with_recovery(sim, node, "batched page fetch failed", region, &segs)
                .unwrap_or_else(|e| panic!("{e}"));
            let demand = all.remove(0);
            // Install the prefetched copies: frame, inaccessible mapping,
            // current contents and version. The next local fault takes the
            // no-transfer shortcut above and waits out the per-segment
            // streaming install time; acquire-time notices invalidate
            // them exactly like demand-fetched copies, which is what makes
            // prefetching safe under release consistency.
            for (i, ((cand, _, version), bytes)) in prefetch.iter().zip(all).enumerate() {
                let cp = PageNum::new(*cand);
                if self.cluster.mem.translate(node, cp).is_none() {
                    let f = self
                        .cluster
                        .mem
                        .alloc_frame(node)
                        .unwrap_or_else(|e| panic!("prefetch frame allocation failed: {e}"));
                    // No clock advance: the NIC deposits segments straight
                    // into these frames, and the mapping bookkeeping
                    // overlaps the demand segment still streaming in.
                    self.cluster.mem.map_page(node, cp, f, Prot::None);
                }
                let (f, _) = self.cluster.mem.translate(node, cp).expect("just mapped");
                self.cluster.mem.frame_write(f, 0, &bytes);
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                let copy = np.copies.entry(*cand).or_insert(CopyState {
                    version: 0,
                    dirty: None,
                });
                copy.version = *version;
                np.prefetched.insert(*cand, times[i + 1]);
                np.stats.prefetch_issued += 1;
                np.stats.fetch_bytes += PAGE_SIZE;
            }
            // Cut-through delivery: the faulting thread resumes as soon as
            // its demand segment (the first) has streamed in; the prefetch
            // tail lands behind it at the per-segment times recorded above.
            (demand, times[0])
        };
        sim.clock_at_least(done);
        if done > t_fetch {
            if let Some(o) = self.obs_if_on() {
                // Self-lane causal edge: the fault issued the home fetch
                // at t_fetch and the thread resumed at `done`; the gap is
                // the fetch wait the critical-path walk can cross. Batched
                // transfers get their own lane so the blame table shows
                // demand-fetch waits shrinking separately.
                o.edge(
                    if prefetch.is_empty() {
                        obs::EdgeKind::PageFetch
                    } else {
                        obs::EdgeKind::BatchFetch
                    },
                    node,
                    sim.tid().0,
                    t_fetch,
                    node,
                    sim.tid().0,
                    done,
                    page.index(),
                );
            }
        }
        if !prefetch.is_empty() {
            if let Some(o) = self.obs_if_on() {
                o.instant(
                    obs::Layer::Proto,
                    node,
                    sim.tid().0,
                    sim.now(),
                    obs::Event::Prefetch {
                        page: page.index(),
                        pages: prefetch.len() as u64,
                        home: home.0,
                    },
                );
            }
        }
        let (frame, _) = self.cluster.mem.translate(node, page).expect("just mapped");
        self.cluster.mem.frame_write(frame, 0, &data);

        {
            let mut st = self.state.lock();
            let home = st.dir[&page.index()].home;
            if let Some(d) = st.dir.get_mut(&page.index()) {
                // Hotness for lock-data forwarding: pages that keep being
                // demand-fetched are worth shipping with lock grants.
                d.hot = d.hot.saturating_add(1);
            }
            {
                let np = &mut st.nodes[node.0 as usize];
                np.stats.remote_fetches += 1;
                np.stats.fetch_bytes += PAGE_SIZE;
            }
            // Affinity hint: credit the home that served this fetch.
            if home.0 as usize >= st.home_pull.len() {
                st.home_pull.resize(home.0 as usize + 1, 0);
            }
            st.home_pull[home.0 as usize] += 1;
            if self.cfg.placement_policy.is_some() && home != node {
                let chunk = page.chunk_base(self.cfg.home_granularity_pages).index();
                st.note_chunk_traffic(node, chunk);
            }
            drop(st);
            self.trace(sim, crate::trace::TraceEvent::Fetch { node, page, home });
            let mut st = self.state.lock();
            let np = &mut st.nodes[node.0 as usize];
            let copy = np.copies.entry(page.index()).or_insert(CopyState {
                version: 0,
                dirty: None,
            });
            copy.version = version;
            match kind {
                FaultKind::Read => {
                    drop(st);
                    self.cluster
                        .mem
                        .set_prot(node, page, Prot::Read)
                        .expect("copy mapped");
                }
                FaultKind::Write => {
                    if copy.dirty.is_none() {
                        copy.dirty = Some(Box::new([0; BITMAP_WORDS]));
                        np.dirty_pages.push(page.index());
                    }
                    {
                        let d = st.dir.get_mut(&page.index()).expect("dir entry");
                        match d.first_writer {
                            None => d.first_writer = Some(node),
                            Some(w) if w != node => d.multi_writer = true,
                            _ => {}
                        }
                    }
                    drop(st);
                    self.cluster
                        .mem
                        .set_prot(node, page, Prot::ReadWrite)
                        .expect("copy mapped");
                }
            }
        }
        sim.advance(self.cluster.mem.config().protect_ns);
    }

    /// Marks the dirty words covered by a write of `len` bytes at `addr`.
    pub(crate) fn mark_dirty(&self, node: NodeId, addr: GAddr, len: u64) {
        let mut st = self.state.lock();
        let np = &mut st.nodes[node.0 as usize];
        if let Some(copy) = np.copies.get_mut(&addr.page().index()) {
            if let Some(dirty) = copy.dirty.as_mut() {
                let first = addr.page_offset() / 8;
                let last = (addr.page_offset() + len - 1) / 8;
                for w in first..=last {
                    dirty[(w / 64) as usize] |= 1u64 << (w % 64);
                }
            }
        }
    }

    /// Early release of a single dirty page: builds its diff, writes the
    /// dirty words home and publishes the write notice — exactly what the
    /// next release would have done for this page, just sooner.
    ///
    /// The acquire path needs this when a pending write notice lands on a
    /// page this node is concurrently writing: the copy cannot be
    /// invalidated while it holds unreleased words (they would be lost),
    /// but skipping the notice would leave the node reading words that
    /// miss the remote writer's update even across a lock acquire. The
    /// copy itself is left in place; the caller invalidates it.
    fn flush_dirty_page(&self, sim: &Sim, page_idx: u64) {
        let node = sim.node();
        let page = PageNum::new(page_idx);
        let (home, region, region_off, write_through) = {
            let st = self.state.lock();
            let d = &st.dir[&page_idx];
            let wt = self.cfg.write_through_single_writer
                && !d.multi_writer
                && d.first_writer == Some(node);
            (d.home, d.region, d.region_off, wt)
        };
        let bitmap = {
            let mut st = self.state.lock();
            let np = &mut st.nodes[node.0 as usize];
            np.dirty_pages.retain(|p| *p != page_idx);
            let copy = np.copies.get_mut(&page_idx).expect("dirty page has copy");
            copy.dirty.take().expect("dirty page has bitmap")
        };
        let runs = dirty_runs(&bitmap);
        let dirty_bytes: u64 = runs.iter().map(|r| (r.1 - r.0) * 8).sum();
        let mut max_arrival = sim.now();
        if home == node {
            sim.advance(self.cfg.costs.diff_build_ns / 4);
        } else {
            if write_through {
                sim.advance(500);
            } else {
                sim.advance(self.cfg.costs.diff_build_ns);
            }
            let need_import = {
                let mut st = self.state.lock();
                st.nodes[node.0 as usize]
                    .imported
                    .insert(region.0, ())
                    .is_none()
            };
            if need_import {
                self.reg_op(sim, node, "region import failed", Some(region), || {
                    self.cluster.vmmc.import_region(node, region)
                })
                .unwrap_or_else(|e| panic!("{e}"));
                sim.advance(self.cluster.vmmc.config().import_op_ns);
            }
            let (frame, _) = self
                .cluster
                .mem
                .translate(node, page)
                .expect("dirty page mapped");
            for (w0, w1) in &runs {
                let off = w0 * 8;
                let len = (w1 - w0) * 8;
                let mut buf = vec![0u8; len as usize];
                self.cluster.mem.frame_read(frame, off as usize, &mut buf);
                let t = self
                    .write_with_recovery(
                        sim,
                        node,
                        "diff write failed",
                        region,
                        region_off + off,
                        &buf,
                    )
                    .unwrap_or_else(|e| panic!("{e}"));
                if !write_through {
                    max_arrival = max_arrival.max(t.arrival);
                }
            }
            {
                let mut st = self.state.lock();
                st.nodes[node.0 as usize].stats.diffs_sent += 1;
                st.nodes[node.0 as usize].stats.diff_bytes += dirty_bytes;
            }
            self.trace(
                sim,
                crate::trace::TraceEvent::Diff {
                    node,
                    page,
                    bytes: dirty_bytes,
                },
            );
        }
        {
            let mut st = self.state.lock();
            let d = st.dir.get_mut(&page_idx).expect("dir entry");
            d.version += 1;
            let v = d.version;
            st.log.push((page_idx, v));
        }
        // The flushed words must be home before the caller invalidates the
        // copy — a refetch racing the diff would resurrect the old words.
        sim.clock_at_least(max_arrival);
    }

    /// Release: flushes this node's dirty pages to their homes and
    /// publishes write notices. Called before every lock release and
    /// barrier arrival.
    pub fn release(&self, sim: &Sim) {
        let node = sim.node();
        let t0 = sim.now();
        sim.sync_point();
        let dirty_pages = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.nodes[node.0 as usize].dirty_pages)
        };
        if dirty_pages.is_empty() {
            return;
        }
        let mut diffed = 0u64;
        let mut max_arrival = sim.now();
        // Diff batching: runs destined to the same home region accumulate
        // here and ship as one multi-segment write per home after the
        // loop. BTreeMap keeps the per-home issue order deterministic. The
        // SimTime is when the batch's first segment was posted: the NIC
        // streams the gather descriptor while the CPU diffs the remaining
        // pages (zero-copy gather DMA), so the wire transfer overlaps the
        // rest of the loop exactly as the unbatched per-run sends do.
        let mut batches: BTreeMap<(u32, u64), (Vec<(u64, Vec<u8>)>, u64, SimTime)> =
            BTreeMap::new();
        if self.cfg.migration_threshold.is_some() || self.cfg.placement_policy.is_some() {
            // Migration policy (extension): one decision per dirty chunk
            // per release — the streak policy bumps its sole-remote-differ
            // streak, the counter policy weighs the chunk's accumulated
            // sharing counters.
            let gran = self.cfg.home_granularity_pages;
            let mut chunks: Vec<u64> = dirty_pages
                .iter()
                .map(|p| PageNum::new(*p).chunk_base(gran).index())
                .collect();
            chunks.sort_unstable();
            chunks.dedup();
            for chunk in chunks {
                self.consider_migration(sim, PageNum::new(chunk));
            }
        }
        for page_idx in dirty_pages {
            let page = PageNum::new(page_idx);
            let (home, region, region_off, write_through) = {
                let st = self.state.lock();
                let d = &st.dir[&page_idx];
                let wt = self.cfg.write_through_single_writer
                    && !d.multi_writer
                    && d.first_writer == Some(node);
                (d.home, d.region, d.region_off, wt)
            };

            // Collect dirty runs from the bitmap.
            let bitmap = {
                let mut st = self.state.lock();
                let copy = st.nodes[node.0 as usize]
                    .copies
                    .get_mut(&page_idx)
                    .expect("dirty page has copy");
                copy.dirty.take().expect("dirty page has bitmap")
            };
            let runs = dirty_runs(&bitmap);
            let dirty_bytes: u64 = runs.iter().map(|r| (r.1 - r.0) * 8).sum();

            if home == node {
                // Home writer: data already authoritative, just a notice.
                sim.advance(self.cfg.costs.diff_build_ns / 4);
            } else {
                if write_through {
                    // Single-writer write-through: updates streamed during
                    // computation; release only fences.
                    sim.advance(500);
                } else {
                    sim.advance(self.cfg.costs.diff_build_ns);
                }
                // The home region may have changed (migration) since we
                // fetched this page; import lazily like the fetch path.
                let need_import = {
                    let mut st = self.state.lock();
                    st.nodes[node.0 as usize]
                        .imported
                        .insert(region.0, ())
                        .is_none()
                };
                if need_import {
                    self.reg_op(sim, node, "region import failed", Some(region), || {
                        self.cluster.vmmc.import_region(node, region)
                    })
                    .unwrap_or_else(|e| panic!("{e}"));
                    sim.advance(self.cluster.vmmc.config().import_op_ns);
                }
                let (frame, _) = self
                    .cluster
                    .mem
                    .translate(node, page)
                    .expect("dirty page mapped");
                if self.cfg.batch_diffs && !write_through {
                    // Defer the wire transfer: collect this page's runs
                    // into the per-home batch. Per-page build cost, trace
                    // and version bump stay exactly as in the unbatched
                    // path; only the messaging is amortized.
                    let entry = batches
                        .entry((home.0, region.0))
                        .or_insert_with(|| (Vec::new(), 0, sim.now()));
                    for (w0, w1) in &runs {
                        let off = w0 * 8;
                        let len = (w1 - w0) * 8;
                        let mut buf = vec![0u8; len as usize];
                        self.cluster.mem.frame_read(frame, off as usize, &mut buf);
                        entry.0.push((region_off + off, buf));
                    }
                    entry.1 += 1;
                    let mut st = self.state.lock();
                    st.nodes[node.0 as usize].stats.diff_bytes += dirty_bytes;
                    if self.cfg.placement_policy.is_some() {
                        let chunk = page.chunk_base(self.cfg.home_granularity_pages).index();
                        st.note_chunk_traffic(node, chunk);
                    }
                } else {
                    for (w0, w1) in &runs {
                        let off = w0 * 8;
                        let len = (w1 - w0) * 8;
                        let mut buf = vec![0u8; len as usize];
                        self.cluster.mem.frame_read(frame, off as usize, &mut buf);
                        let t = self
                            .write_with_recovery(
                                sim,
                                node,
                                "diff write failed",
                                region,
                                region_off + off,
                                &buf,
                            )
                            .unwrap_or_else(|e| panic!("{e}"));
                        if !write_through {
                            max_arrival = max_arrival.max(t.arrival);
                        }
                    }
                    let mut st = self.state.lock();
                    st.nodes[node.0 as usize].stats.diffs_sent += 1;
                    st.nodes[node.0 as usize].stats.diff_bytes += dirty_bytes;
                    if self.cfg.placement_policy.is_some() {
                        let chunk = page.chunk_base(self.cfg.home_granularity_pages).index();
                        st.note_chunk_traffic(node, chunk);
                    }
                }
                diffed += 1;
                self.trace(
                    sim,
                    crate::trace::TraceEvent::Diff {
                        node,
                        page,
                        bytes: dirty_bytes,
                    },
                );
            }

            // Bump the version and publish the notice. The releaser's own
            // copy is complete only if nobody else released this page
            // since we fetched it; a copy with a stale base misses the
            // other writers' words, so it must not stay readable.
            let stale_base = {
                let mut st = self.state.lock();
                let d = st.dir.get_mut(&page_idx).expect("dir entry");
                let pre = d.version;
                d.version += 1;
                let v = d.version;
                st.log.push((page_idx, v));
                let copy = st.nodes[node.0 as usize]
                    .copies
                    .get_mut(&page_idx)
                    .expect("copy");
                if copy.version == pre {
                    copy.version = v;
                    false
                } else {
                    home != node
                }
            };
            if stale_base {
                // Concurrent remote releases interleaved since this copy
                // was fetched: drop it (the diff above is already on its
                // way home) and refetch a complete page on next touch.
                self.cluster
                    .mem
                    .set_prot(node, page, Prot::None)
                    .expect("dirty page mapped");
                let mut st = self.state.lock();
                st.nodes[node.0 as usize].copies.remove(&page_idx);
                drop(st);
                self.trace(sim, crate::trace::TraceEvent::Invalidate { node, page });
            } else {
                // Downgrade to read-only so new writes are tracked again.
                self.cluster
                    .mem
                    .set_prot(node, page, Prot::Read)
                    .expect("dirty page mapped");
            }
            sim.advance(self.cluster.mem.config().protect_ns);
        }
        // Ship the accumulated per-home batches: one multi-segment write
        // (one header, one fence contribution) per home instead of one
        // message per dirty run.
        for ((home_id, region_id), (mut segs, pages, t_first)) in batches {
            // Merge runs adjacent in region-offset space — this is where
            // dirty runs fuse across page boundaries within a chunk.
            segs.sort_by_key(|(off, _)| *off);
            let mut merged: Vec<(u64, Vec<u8>)> = Vec::with_capacity(segs.len());
            for (off, buf) in segs {
                match merged.last_mut() {
                    Some((m_off, m_buf)) if *m_off + m_buf.len() as u64 == off => {
                        m_buf.extend_from_slice(&buf);
                    }
                    _ => merged.push((off, buf)),
                }
            }
            let bytes: u64 = merged.iter().map(|(_, b)| b.len() as u64).sum();
            let region = RegionId(region_id);
            let t_issue = sim.now();
            let t = self
                .write_multi_with_recovery(
                    sim,
                    node,
                    "batched diff write failed",
                    region,
                    &merged,
                    t_first,
                )
                .unwrap_or_else(|e| panic!("{e}"));
            max_arrival = max_arrival.max(t.arrival);
            {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                np.stats.diffs_sent += 1;
                np.stats.diff_batches += 1;
                np.stats.batched_diff_bytes += bytes;
            }
            if let Some(o) = self.obs_if_on() {
                o.instant(
                    obs::Layer::Proto,
                    node,
                    sim.tid().0,
                    sim.now(),
                    obs::Event::DiffBatch {
                        home: home_id,
                        pages,
                        bytes,
                    },
                );
                if t.arrival > t_issue {
                    o.edge(
                        obs::EdgeKind::BatchDiff,
                        node,
                        sim.tid().0,
                        t_issue,
                        node,
                        sim.tid().0,
                        t.arrival,
                        home_id as u64,
                    );
                }
            }
        }
        // Release fence: diffs must be remotely visible.
        sim.clock_at_least(max_arrival);
        if let Some(o) = self.obs_if_on() {
            o.span(
                obs::Layer::Proto,
                node,
                sim.tid().0,
                t0,
                sim.now().saturating_since(t0),
                obs::Event::ReleaseSpan { diffs: diffed },
            );
        }
    }

    /// Acquire: applies all write notices this node has not yet seen,
    /// invalidating stale copies. Called after every lock grant and
    /// barrier departure.
    pub fn acquire(&self, sim: &Sim) {
        let node = sim.node();
        let t0 = sim.now();
        let mut invalidate = Vec::new();
        let mut flush_first = Vec::new();
        let applied;
        {
            let mut st = self.state.lock();
            let cursor = st.nodes[node.0 as usize].log_cursor;
            let end = st.log.len();
            applied = end - cursor;
            for i in cursor..end {
                let (page_idx, version) = st.log[i];
                let home = st.dir[&page_idx].home;
                if home == node {
                    continue;
                }
                if let Some(copy) = st.nodes[node.0 as usize].copies.get(&page_idx) {
                    if copy.version < version {
                        if copy.dirty.is_none() {
                            invalidate.push(page_idx);
                        } else {
                            // This node is concurrently writing the page
                            // (another allocation sharing it, or a write
                            // outside any critical section): flush those
                            // words home first, then invalidate like the
                            // rest — never read past the notice.
                            flush_first.push(page_idx);
                        }
                    }
                }
            }
            invalidate.sort_unstable();
            invalidate.dedup();
            flush_first.sort_unstable();
            flush_first.dedup();
            st.nodes[node.0 as usize].log_cursor = end;
            st.nodes[node.0 as usize].stats.notices_applied +=
                (invalidate.len() + flush_first.len()) as u64;
        }
        for page_idx in flush_first {
            self.flush_dirty_page(sim, page_idx);
            invalidate.push(page_idx);
        }
        for page_idx in &invalidate {
            let page = PageNum::new(*page_idx);
            self.cluster
                .mem
                .set_prot(node, page, Prot::None)
                .expect("cached copy mapped");
            {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                np.copies.remove(page_idx);
                if np.prefetched.remove(page_idx).is_some() {
                    np.stats.prefetch_wasted += 1;
                }
            }
            self.trace(sim, crate::trace::TraceEvent::Invalidate { node, page });
        }
        if applied > 0 {
            sim.advance(self.cfg.costs.notice_apply_ns * invalidate.len().max(1) as u64);
            if let Some(o) = self.obs_if_on() {
                o.span(
                    obs::Layer::Proto,
                    node,
                    sim.tid().0,
                    t0,
                    sim.now().saturating_since(t0),
                    obs::Event::AcquireSpan {
                        invals: invalidate.len() as u64,
                    },
                );
            }
        }
    }

    /// Acquire executed on a lock grant. With lock-data forwarding on,
    /// pending write notices for *hot* pages (frequently demand-fetched)
    /// are resolved by refreshing the page contents from home in one
    /// batched fetch piggybacked on the grant — the acquirer keeps a
    /// current readable copy and skips the first post-acquire fault
    /// round trip. Cold pages are invalidated as usual. With forwarding
    /// off this is exactly [`SvmSystem::acquire`].
    pub(crate) fn acquire_on_lock(&self, sim: &Sim) {
        if !self.cfg.lock_forwarding {
            self.acquire(sim);
            return;
        }
        let node = sim.node();
        let t0 = sim.now();
        let hot_min = self.cfg.lock_forward_hot;
        let mut invalidate = Vec::new();
        let mut flush_first = Vec::new();
        // Hot stale pages grouped per (home, region): (page, region_off,
        // version to install).
        let mut forward: BTreeMap<(u32, u64), Vec<(u64, u64, u64)>> = BTreeMap::new();
        let applied;
        {
            let mut st = self.state.lock();
            let cursor = st.nodes[node.0 as usize].log_cursor;
            let end = st.log.len();
            applied = end - cursor;
            // Latest pending notice per stale page (the log may carry
            // several intervals for the same page).
            let mut stale: BTreeMap<u64, u64> = BTreeMap::new();
            for i in cursor..end {
                let (page_idx, version) = st.log[i];
                if st.dir[&page_idx].home == node {
                    continue;
                }
                if let Some(copy) = st.nodes[node.0 as usize].copies.get(&page_idx) {
                    if copy.version < version {
                        if copy.dirty.is_none() {
                            let e = stale.entry(page_idx).or_insert(version);
                            if version > *e {
                                *e = version;
                            }
                        } else {
                            // Concurrently written locally: flush the
                            // dirty words home, then invalidate (see
                            // `acquire`). Never forwarded — the grant
                            // cannot carry a page we still owe a diff.
                            flush_first.push(page_idx);
                        }
                    }
                }
            }
            for (page_idx, version) in stale {
                let d = &st.dir[&page_idx];
                if d.hot >= hot_min {
                    forward.entry((d.home.0, d.region.0)).or_default().push((
                        page_idx,
                        d.region_off,
                        d.version.max(version),
                    ));
                } else {
                    invalidate.push(page_idx);
                }
            }
            flush_first.sort_unstable();
            flush_first.dedup();
            st.nodes[node.0 as usize].log_cursor = end;
            let fwd: u64 = forward.values().map(|v| v.len() as u64).sum();
            st.nodes[node.0 as usize].stats.notices_applied +=
                (invalidate.len() + flush_first.len()) as u64 + fwd;
        }
        for page_idx in flush_first {
            self.flush_dirty_page(sim, page_idx);
            invalidate.push(page_idx);
        }
        for page_idx in &invalidate {
            let page = PageNum::new(*page_idx);
            self.cluster
                .mem
                .set_prot(node, page, Prot::None)
                .expect("cached copy mapped");
            {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                np.copies.remove(page_idx);
                if np.prefetched.remove(page_idx).is_some() {
                    np.stats.prefetch_wasted += 1;
                }
            }
            self.trace(sim, crate::trace::TraceEvent::Invalidate { node, page });
        }
        let mut forwarded_pages = 0u64;
        for ((_home_id, region_id), pages) in &forward {
            let region = RegionId(*region_id);
            // The home region may never have been imported here (a copy
            // can originate from an earlier forward); import lazily.
            let need_import = {
                let mut st = self.state.lock();
                st.nodes[node.0 as usize]
                    .imported
                    .insert(region.0, ())
                    .is_none()
            };
            if need_import {
                self.reg_op(sim, node, "region import failed", Some(region), || {
                    self.cluster.vmmc.import_region(node, region)
                })
                .unwrap_or_else(|e| panic!("{e}"));
                sim.advance(self.cluster.vmmc.config().import_op_ns);
            }
            let segs: Vec<(u64, u64)> = pages.iter().map(|(_, off, _)| (*off, PAGE_SIZE)).collect();
            let t_issue = sim.now();
            let (all, times) = self
                .fetch_multi_with_recovery(sim, node, "lock-forward fetch failed", region, &segs)
                .unwrap_or_else(|e| panic!("{e}"));
            // The acquirer needs every forwarded page current before the
            // critical section runs, so it waits for the whole batch.
            let done = *times.last().expect("at least one segment");
            sim.clock_at_least(done);
            if done > t_issue {
                if let Some(o) = self.obs_if_on() {
                    o.edge(
                        obs::EdgeKind::BatchFetch,
                        node,
                        sim.tid().0,
                        t_issue,
                        node,
                        sim.tid().0,
                        done,
                        *_home_id as u64,
                    );
                }
            }
            for ((page_idx, _, version), data) in pages.iter().zip(all) {
                let page = PageNum::new(*page_idx);
                let (frame, _) = self
                    .cluster
                    .mem
                    .translate(node, page)
                    .expect("stale copy mapped");
                self.cluster.mem.frame_write(frame, 0, &data);
                self.cluster
                    .mem
                    .set_prot(node, page, Prot::Read)
                    .expect("stale copy mapped");
                sim.advance(self.cluster.mem.config().protect_ns);
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                // The copy may have been removed by a concurrent acquire
                // on this node; recreate it with the refreshed version.
                let copy = np.copies.entry(*page_idx).or_insert(CopyState {
                    version: 0,
                    dirty: None,
                });
                copy.version = *version;
                np.prefetched.remove(page_idx);
                forwarded_pages += 1;
            }
            {
                let mut st = self.state.lock();
                let np = &mut st.nodes[node.0 as usize];
                np.stats.lock_forwards += 1;
                np.stats.lock_forward_bytes += PAGE_SIZE * pages.len() as u64;
            }
        }
        if applied > 0 {
            sim.advance(self.cfg.costs.notice_apply_ns * invalidate.len().max(1) as u64);
            if let Some(o) = self.obs_if_on() {
                if forwarded_pages > 0 {
                    let bytes = forwarded_pages * PAGE_SIZE;
                    o.instant(
                        obs::Layer::Proto,
                        node,
                        sim.tid().0,
                        sim.now(),
                        obs::Event::LockForward {
                            pages: forwarded_pages,
                            bytes,
                        },
                    );
                }
                o.span(
                    obs::Layer::Proto,
                    node,
                    sim.tid().0,
                    t0,
                    sim.now().saturating_since(t0),
                    obs::Event::AcquireSpan {
                        invals: invalidate.len() as u64,
                    },
                );
            }
        }
    }

    /// Detailed misplacement list `(page, first_toucher, home)` for
    /// diagnostics.
    pub fn misplaced_pages(&self) -> Vec<(u64, NodeId, NodeId)> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for (page, toucher) in &st.first_toucher {
            if let Some(d) = st.dir.get(page) {
                if d.home != *toucher {
                    out.push((*page, *toucher, d.home));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Applies the configured migration policy for one dirty chunk at
    /// release time. The counter policy takes precedence when both knobs
    /// are set; with neither set this is never called.
    fn consider_migration(&self, sim: &Sim, page: PageNum) {
        if let Some(policy) = self.cfg.placement_policy {
            self.consider_migration_counters(sim, page, policy);
        } else if let Some(threshold) = self.cfg.migration_threshold {
            self.consider_migration_streak(sim, page, threshold);
        }
    }

    /// The legacy streak policy: bump the chunk's sole-remote-differ
    /// streak and migrate the chunk here once the streak reaches
    /// `threshold`.
    fn consider_migration_streak(&self, sim: &Sim, page: PageNum, threshold: u32) {
        let node = sim.node();
        let gran = self.cfg.home_granularity_pages;
        let chunk_base = page.chunk_base(gran);
        let migrate = {
            let mut st = self.state.lock();
            let home = match st.dir.get(&page.index()) {
                Some(d) => d.home,
                None => return,
            };
            if home == node {
                return;
            }
            if !self.chunk_migratable(&st, node, chunk_base) {
                return;
            }
            let e = st
                .diff_streaks
                .entry(chunk_base.index())
                .or_insert((node, 0));
            if e.0 == node {
                e.1 += 1;
            } else {
                *e = (node, 1);
            }
            e.1 >= threshold
        };
        if migrate {
            self.migrate_chunk(sim, chunk_base);
            let mut st = self.state.lock();
            st.diff_streaks.remove(&chunk_base.index());
        }
    }

    /// The counter-driven policy: migrate the chunk here when this node
    /// dominates its accumulated remote fetch+diff traffic, the traffic
    /// cleared the policy floor, and the chunk is out of its
    /// post-migration cooldown (hysteresis against home thrash). The
    /// dominance test inherently refuses ping-ponging chunks — traffic
    /// split between alternating nodes never clears it.
    fn consider_migration_counters(&self, sim: &Sim, page: PageNum, policy: PlacementPolicy) {
        let node = sim.node();
        let gran = self.cfg.home_granularity_pages;
        let chunk_base = page.chunk_base(gran);
        let migrate = {
            let mut st = self.state.lock();
            let home = match st.dir.get(&page.index()) {
                Some(d) => d.home,
                None => return,
            };
            if home == node {
                return;
            }
            st.nodes[node.0 as usize].stats.policy_considered += 1;
            let nodes = st.nodes.len();
            let cs = st
                .chunk_sharing
                .entry(chunk_base.index())
                .or_insert_with(|| ChunkSharing::new(nodes));
            if cs.cooldown < policy.cooldown_releases {
                cs.cooldown += 1;
                return;
            }
            let total: u64 = cs.traffic.iter().map(|&t| t as u64).sum();
            let mine = cs
                .traffic
                .get(node.0 as usize)
                .copied()
                .unwrap_or(0) as u64;
            if total < policy.min_traffic as u64
                || mine * 100 < total * policy.dominance_pct as u64
            {
                return;
            }
            if !self.chunk_migratable(&st, node, chunk_base) {
                return;
            }
            true
        };
        if migrate {
            self.migrate_chunk(sim, chunk_base);
            let mut st = self.state.lock();
            st.nodes[node.0 as usize].stats.policy_migrations += 1;
            // Restart the chunk's sharing profile under the new home and
            // arm the cooldown clock.
            let nodes = st.nodes.len();
            let cs = st
                .chunk_sharing
                .entry(chunk_base.index())
                .or_insert_with(|| ChunkSharing::new(nodes));
            cs.sharers = 0;
            cs.traffic.iter_mut().for_each(|t| *t = 0);
            cs.last_node = None;
            cs.cooldown = 0;
        }
    }

    /// Safety invariants shared by both migration policies: only migrate
    /// chunks whose local copies are all current (another interval's diff
    /// would otherwise be lost) and on which no other node holds
    /// unflushed dirty words.
    fn chunk_migratable(&self, st: &ProtoState, node: NodeId, chunk_base: PageNum) -> bool {
        let gran = self.cfg.home_granularity_pages;
        let current = (0..gran).all(|i| {
            let idx = chunk_base.index() + i;
            match (st.dir.get(&idx), st.nodes[node.0 as usize].copies.get(&idx)) {
                (Some(d), Some(c)) => c.version >= d.version,
                (Some(_), None) => true, // no copy: nothing to lose
                _ => true,
            }
        });
        let foreign_dirty = st.nodes.iter().enumerate().any(|(n, np)| {
            n != node.0 as usize
                && (0..gran).any(|i| {
                    np.copies
                        .get(&(chunk_base.index() + i))
                        .map(|c| c.dirty.is_some())
                        .unwrap_or(false)
                })
        });
        current && !foreign_dirty
    }

    /// Migrates the chunk at `base` to the calling node: new home frames
    /// are allocated in this node's home region, current contents are
    /// pulled over, the directory is updated and a write notice makes
    /// every stale copy refetch from the new home. (The mechanism of
    /// paper §2.1.3, driven by the policy above.)
    fn migrate_chunk(&self, sim: &Sim, base: PageNum) {
        debug_assert_eq!(self.cfg.mode, ProtoMode::Cables, "migration is a CableS mechanism");
        let node = sim.node();
        let gran = self.cfg.home_granularity_pages;
        let os = self.cluster.mem.config().clone();

        // New home frames in this node's (single) registered region.
        // Invariant: migration targets the faulting node's own memory,
        // which the workloads never exhaust — a failure here is fatal.
        let mut frames = Vec::with_capacity(gran as usize);
        for _ in 0..gran {
            frames.push(
                self.cluster
                    .mem
                    .alloc_frame(node)
                    .unwrap_or_else(|e| panic!("migration frame allocation failed: {e}")),
            );
        }
        sim.advance(os.frame_alloc_ns * gran);
        let (region, base_off) = {
            let entry = {
                let st = self.state.lock();
                st.home_region[node.0 as usize]
            };
            let (region, off) = match entry {
                Some((r, len)) => {
                    self.reg_op(sim, node, "migration region extension failed", Some(r), || {
                        self.cluster.vmmc.extend_region(r, frames.clone())
                    })
                    .unwrap_or_else(|e| panic!("{e}"));
                    (r, len)
                }
                None => {
                    let r = self
                        .reg_op(sim, node, "migration region export failed", None, || {
                            self.cluster.vmmc.export_region(node, frames.clone())
                        })
                        .unwrap_or_else(|e| panic!("{e}"));
                    (r, 0)
                }
            };
            let mut st = self.state.lock();
            st.home_region[node.0 as usize] = Some((region, off + gran * PAGE_SIZE));
            (region, off)
        };
        sim.advance(self.cluster.vmmc.config().extend_op_ns);

        // Pull current contents: from the local (current) copy when one
        // exists, otherwise fetched from the old home.
        for i in 0..gran {
            let idx = base.index() + i;
            let new_frame = frames[i as usize];
            let local = self
                .cluster
                .mem
                .translate(node, PageNum::new(idx))
                .map(|(f, _)| f);
            let (old_region, old_off, in_dir) = {
                let st = self.state.lock();
                match st.dir.get(&idx) {
                    Some(d) => (d.region, d.region_off, true),
                    None => (region, 0, false),
                }
            };
            match local {
                Some(f) => self.cluster.mem.copy_frame(f, new_frame),
                None if in_dir => {
                    let (data, done) = self
                        .fetch_with_recovery(
                            sim,
                            node,
                            "migration fetch failed",
                            old_region,
                            old_off,
                            PAGE_SIZE,
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                    sim.clock_at_least(done);
                    self.cluster.mem.frame_write(new_frame, 0, &data);
                }
                None => {}
            }
        }

        // Remap the chunk locally onto the new home frames and update the
        // directory; the version bump invalidates every remote copy.
        self.cluster
            .mem
            .map_chunk(node, base, &frames, Prot::None)
            .expect("chunk-aligned migration mapping");
        sim.advance(os.map_op_ns);
        {
            let mut st = self.state.lock();
            let stx = &mut *st;
            for i in 0..gran {
                let idx = base.index() + i;
                if let Some(d) = stx.dir.get_mut(&idx) {
                    d.home = node;
                    d.region = region;
                    d.region_off = base_off + i * PAGE_SIZE;
                    d.version += 1;
                    let v = d.version;
                    stx.log.push((idx, v));
                    let np = &mut stx.nodes[node.0 as usize];
                    let copy = np.copies.entry(idx).or_insert(CopyState {
                        version: 0,
                        dirty: None,
                    });
                    copy.version = v;
                    // A pending dirty map stays attached: the flush that
                    // follows is now a (free) home-local release.
                }
            }
            stx.nodes[node.0 as usize].stats.migrations += 1;
        }
        self.trace(sim, crate::trace::TraceEvent::Migrate { node, base });
        sim.op_point(self.cfg.costs.placement_bookkeeping_ns);
        if node != self.master {
            let t = self.cluster.san.send(node, self.master, 64, sim.now());
            sim.clock_at_least(t.local_done);
        }
    }

    /// Placement quality of the run so far (paper Fig. 6): a page is
    /// *misplaced* when its home is not its first toucher — i.e. when the
    /// 64 KB binding granularity overruled the page-granular first-touch
    /// placement the base system would have produced.
    pub fn placement_report(&self) -> PlacementReport {
        let st = self.state.lock();
        let mut rep = PlacementReport::default();
        for (page, toucher) in &st.first_toucher {
            if let Some(d) = st.dir.get(page) {
                rep.touched_pages += 1;
                if d.home != *toucher {
                    rep.misplaced_pages += 1;
                }
            }
        }
        rep
    }

    /// Protocol counters for `node`.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        let st = self.state.lock();
        st.nodes[node.0 as usize].stats
    }

    /// Sum of protocol counters over all nodes.
    pub fn total_stats(&self) -> NodeStats {
        let st = self.state.lock();
        let mut out = NodeStats::default();
        for n in &st.nodes {
            let s = n.stats;
            out.read_faults += s.read_faults;
            out.write_faults += s.write_faults;
            out.remote_fetches += s.remote_fetches;
            out.fetch_bytes += s.fetch_bytes;
            out.diffs_sent += s.diffs_sent;
            out.diff_bytes += s.diff_bytes;
            out.notices_applied += s.notices_applied;
            out.placements += s.placements;
            out.migrations += s.migrations;
            out.lock_acquires += s.lock_acquires;
            out.barrier_waits += s.barrier_waits;
            out.diff_batches += s.diff_batches;
            out.batched_diff_bytes += s.batched_diff_bytes;
            out.prefetch_issued += s.prefetch_issued;
            out.prefetch_hits += s.prefetch_hits;
            out.prefetch_wasted += s.prefetch_wasted;
            out.lock_forwards += s.lock_forwards;
            out.lock_forward_bytes += s.lock_forward_bytes;
            out.pingpong_handoffs += s.pingpong_handoffs;
            out.policy_considered += s.policy_considered;
            out.policy_migrations += s.policy_migrations;
        }
        out
    }

    /// Per-node remote-pull counts: demand fetches each node has served
    /// as home. The thread-affinity placement hint the CableS runtime
    /// consults when `affinity_placement` is on (reading it never
    /// perturbs the protocol).
    pub fn home_pull(&self) -> Vec<u64> {
        self.state.lock().home_pull.clone()
    }
}

/// Decodes a dirty bitmap into half-open word ranges `(first, last+1)`.
pub(crate) fn dirty_runs(bitmap: &[u64; BITMAP_WORDS]) -> Vec<(u64, u64)> {
    let mut runs = Vec::new();
    let mut start: Option<u64> = None;
    for w in 0..WORDS_PER_PAGE as u64 {
        let set = bitmap[(w / 64) as usize] >> (w % 64) & 1 == 1;
        match (set, start) {
            (true, None) => start = Some(w),
            (false, Some(s)) => {
                runs.push((s, w));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, WORDS_PER_PAGE as u64));
    }
    runs
}

/// Typed read/write entry points live on [`SvmSystem`]; see `api.rs`.
impl SvmSystem {
    /// Reads a scalar from the shared address space, faulting into the
    /// protocol as needed.
    pub fn read<T: Scalar>(&self, sim: &Sim, addr: GAddr) -> T {
        self.crash_check(sim);
        sim.advance(self.cfg.costs.access_check_ns);
        loop {
            match self.cluster.mem.read_scalar::<T>(sim.node(), addr) {
                Ok(v) => return v,
                Err(f) => self.handle_fault(sim, f.page, f.kind),
            }
        }
    }

    /// Writes a scalar to the shared address space, faulting into the
    /// protocol as needed; the touched words become part of the next
    /// release's diff.
    pub fn write<T: Scalar>(&self, sim: &Sim, addr: GAddr, v: T) {
        self.crash_check(sim);
        sim.advance(self.cfg.costs.access_check_ns);
        loop {
            match self.cluster.mem.write_scalar::<T>(sim.node(), addr, v) {
                Ok(()) => {
                    self.mark_dirty(sim.node(), addr, T::SIZE as u64);
                    return;
                }
                Err(f) => self.handle_fault(sim, f.page, f.kind),
            }
        }
    }

    fn assert_bulk_align<T: Scalar>(addr: GAddr) {
        assert_eq!(
            addr.raw() % T::SIZE as u64,
            0,
            "bulk access must be aligned to the element size ({} bytes)",
            T::SIZE
        );
    }

    /// Reads `out.len()` consecutive scalars starting at `addr`.
    ///
    /// Semantically identical to a loop of [`SvmSystem::read`] — same
    /// faults, same virtual time, same protocol traffic — but one
    /// translation and one copy per contiguous page run instead of per
    /// element. Equivalence holds because consecutive [`Sim::advance`]
    /// charges sum, and once the first element of a run succeeds the rest
    /// of the run cannot fault (there is no scheduling point in between,
    /// so no other thread can change the page's protection).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to `T`'s size.
    pub fn read_slice<T: Scalar>(&self, sim: &Sim, addr: GAddr, out: &mut [T]) {
        self.crash_check(sim);
        Self::assert_bulk_align::<T>(addr);
        if !self.fast_path.load(std::sync::atomic::Ordering::Relaxed) {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.read(sim, addr + (i * T::SIZE) as u64);
            }
            return;
        }
        let a = self.cfg.costs.access_check_ns;
        let node = sim.node();
        let total = out.len() * T::SIZE;
        let mut buf = [0u8; PAGE_SIZE as usize];
        let mut off = 0usize;
        while off < total {
            let run_addr = addr + off as u64;
            let n = (total - off).min((PAGE_SIZE - run_addr.page_offset()) as usize);
            let k = (n / T::SIZE) as u64;
            // One access check up front so a fault is charged exactly as
            // the scalar path charges it; the remaining k-1 checks follow
            // the successful copy.
            sim.advance(a);
            loop {
                match self.cluster.mem.read_page_run(node, run_addr, &mut buf[..n]) {
                    Ok(_) => break,
                    Err(f) => self.handle_fault(sim, f.page, f.kind),
                }
            }
            sim.advance((k - 1) * a);
            for i in 0..k as usize {
                out[off / T::SIZE + i] = T::load(&buf[i * T::SIZE..(i + 1) * T::SIZE]);
            }
            off += n;
        }
    }

    /// Writes `data` as consecutive scalars starting at `addr`.
    ///
    /// Semantically identical to a loop of [`SvmSystem::write`]; the dirty
    /// bitmap is marked once per page run (the same word bits a per-scalar
    /// loop would set), so release diffs are unchanged. See
    /// [`SvmSystem::read_slice`] for the equivalence argument.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to `T`'s size.
    pub fn write_slice<T: Scalar>(&self, sim: &Sim, addr: GAddr, data: &[T]) {
        self.crash_check(sim);
        Self::assert_bulk_align::<T>(addr);
        if !self.fast_path.load(std::sync::atomic::Ordering::Relaxed) {
            for (i, v) in data.iter().enumerate() {
                self.write(sim, addr + (i * T::SIZE) as u64, *v);
            }
            return;
        }
        let a = self.cfg.costs.access_check_ns;
        let node = sim.node();
        let total = data.len() * T::SIZE;
        let mut buf = [0u8; PAGE_SIZE as usize];
        let mut off = 0usize;
        while off < total {
            let run_addr = addr + off as u64;
            let n = (total - off).min((PAGE_SIZE - run_addr.page_offset()) as usize);
            let k = (n / T::SIZE) as u64;
            for i in 0..k as usize {
                data[off / T::SIZE + i].store(&mut buf[i * T::SIZE..(i + 1) * T::SIZE]);
            }
            sim.advance(a);
            loop {
                match self.cluster.mem.write_page_run(node, run_addr, &buf[..n]) {
                    Ok(_) => break,
                    Err(f) => self.handle_fault(sim, f.page, f.kind),
                }
            }
            self.mark_dirty(node, run_addr, n as u64);
            sim.advance((k - 1) * a);
            off += n;
        }
    }

    /// Writes `count` copies of `v` starting at `addr` — the bulk
    /// equivalent of a `for i in 0..count { write(addr + i*size, v) }`
    /// initialization loop.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to `T`'s size.
    pub fn fill<T: Scalar>(&self, sim: &Sim, addr: GAddr, v: T, count: usize) {
        self.crash_check(sim);
        Self::assert_bulk_align::<T>(addr);
        if !self.fast_path.load(std::sync::atomic::Ordering::Relaxed) {
            for i in 0..count {
                self.write(sim, addr + (i * T::SIZE) as u64, v);
            }
            return;
        }
        let mut pat = [0u8; 8];
        v.store(&mut pat[..T::SIZE]);
        // A uniform byte pattern (zeros, 0xFF…) can use the memset path;
        // anything else goes through a pre-tiled page buffer.
        let uniform = pat[..T::SIZE].iter().all(|&b| b == pat[0]);
        let mut buf = [0u8; PAGE_SIZE as usize];
        if !uniform {
            for chunk in buf.chunks_exact_mut(T::SIZE) {
                chunk.copy_from_slice(&pat[..T::SIZE]);
            }
        }
        let a = self.cfg.costs.access_check_ns;
        let node = sim.node();
        let total = count * T::SIZE;
        let mut off = 0usize;
        while off < total {
            let run_addr = addr + off as u64;
            let n = (total - off).min((PAGE_SIZE - run_addr.page_offset()) as usize);
            let k = (n / T::SIZE) as u64;
            sim.advance(a);
            loop {
                let res = if uniform {
                    self.cluster.mem.fill_page_run(node, run_addr, pat[0], n)
                } else {
                    self.cluster.mem.write_page_run(node, run_addr, &buf[..n])
                };
                match res {
                    Ok(_) => break,
                    Err(f) => self.handle_fault(sim, f.page, f.kind),
                }
            }
            self.mark_dirty(node, run_addr, n as u64);
            sim.advance((k - 1) * a);
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_runs_empty() {
        let bm = [0u64; BITMAP_WORDS];
        assert!(dirty_runs(&bm).is_empty());
    }

    #[test]
    fn dirty_runs_single_word() {
        let mut bm = [0u64; BITMAP_WORDS];
        bm[0] |= 1 << 5;
        assert_eq!(dirty_runs(&bm), vec![(5, 6)]);
    }

    #[test]
    fn dirty_runs_merges_adjacent() {
        let mut bm = [0u64; BITMAP_WORDS];
        for w in 10..20 {
            bm[w / 64] |= 1 << (w % 64);
        }
        bm[1] |= 1; // word 64, separate run
        assert_eq!(dirty_runs(&bm), vec![(10, 20), (64, 65)]);
    }

    #[test]
    fn dirty_runs_tail_run() {
        let mut bm = [0u64; BITMAP_WORDS];
        let last = WORDS_PER_PAGE as u64 - 1;
        bm[(last / 64) as usize] |= 1 << (last % 64);
        assert_eq!(dirty_runs(&bm), vec![(last, last + 1)]);
    }

    #[test]
    fn placement_report_pct() {
        let r = PlacementReport {
            touched_pages: 200,
            misplaced_pages: 50,
        };
        assert!((r.misplaced_pct() - 25.0).abs() < 1e-9);
        assert_eq!(PlacementReport::default().misplaced_pct(), 0.0);
    }
}
