//! # cables-svm — the GeNIMA-style shared virtual memory protocol
//!
//! A home-based, page-level SVM protocol with release consistency, modelled
//! on GeNIMA (the substrate of the CableS paper). One protocol engine
//! serves both evaluated systems:
//!
//! - [`SvmConfig::base`] — the original tuned system: page-granular
//!   first-touch homes, per-run NIC registration, single-writer
//!   write-through optimization;
//! - [`SvmConfig::cables`] — the memory subsystem CableS layers underneath
//!   its pthreads API: 64 KB-granular home binding (the WindowsNT
//!   remapping restriction) and a single growing home region per node
//!   (double virtual mapping).
//!
//! Shared accesses go through [`SvmSystem::read`] / [`SvmSystem::write`];
//! faults run the protocol (first-touch placement, page fetch, write
//! upgrade); [`SvmSystem::lock`] / [`SvmSystem::unlock`] /
//! [`SvmSystem::barrier`] are the release-consistency synchronization
//! points. [`SvmSystem::placement_report`] quantifies misplaced pages
//! (paper Fig. 6).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod cluster;
mod config;
mod proto;
mod sync;
mod trace;

pub use api::SvmSystem;
pub use cluster::{Cluster, ClusterConfig};
pub use config::{PlacementPolicy, ProtoMode, SvmConfig, SvmCosts};
pub use proto::{
    NodeStats, PlacementReport, ProtoError, GLOBAL_SECTION_BASE, GLOBAL_SECTION_BYTES, HEAP_BASE,
};
pub use trace::{TraceEvent, TraceRecord, TRACE_CAP};
