//! System locks and native barriers (GeNIMA's synchronization primitives).
//!
//! Locks are the release-consistency *acquire* operations; barriers combine
//! a release (arrival) with an acquire (departure). The M4 macro layer and
//! CableS's pthreads mutexes are both built on these.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use sim::{NodeId, Sim, SimTime, Tid};

use crate::api::SvmSystem;
use crate::proto::{BarrierState, LockState};

impl SvmSystem {
    /// Whether lock `id`'s ownership is currently cached at `node` (so an
    /// acquire from that node is a purely local operation).
    pub fn lock_is_local(&self, id: u64, node: sim::NodeId) -> bool {
        let st = self.state.lock();
        st.locks
            .get(&id)
            .map(|l| l.holder_node == Some(node))
            .unwrap_or(false)
    }

    /// The node where lock `id`'s ownership is currently cached, if any.
    pub fn lock_owner_node(&self, id: u64) -> Option<sim::NodeId> {
        let st = self.state.lock();
        st.locks.get(&id).and_then(|l| l.holder_node)
    }

    /// Acquires system lock `id`, blocking until granted, then applies
    /// pending write notices (the RC acquire).
    ///
    /// Lock ownership is cached at nodes: re-acquiring a lock last held on
    /// the same node is a purely local operation (paper Table 4, "local
    /// mutex lock" vs "remote mutex lock").
    pub fn lock(&self, sim: &Sim, id: u64) {
        self.crash_check(sim);
        let t0 = sim.now();
        // Advance the streaming-series clock at sync entry so live
        // windows keep cutting through long quiet stretches (no-op
        // unless a series is running; never charges simulated time).
        if let Some(o) = self.obs_if_on() {
            o.series_tick(t0);
        }
        sim.op_point(self.cfg.costs.lock_local_ns);
        let node = sim.node();

        let (granted, first_time, local_grant, manager) = {
            let mut st = self.state.lock();
            let stx = &mut *st;
            // The first acquirer's node manages the lock (as with GeNIMA's
            // distributed lock managers assigned at first use).
            let l = stx.locks.entry(id).or_insert_with(|| LockState {
                manager: node,
                holder: None,
                holder_node: None,
                waiters: Default::default(),
                acquired_from: HashMap::new(),
            });
            let manager = l.manager;
            let first_time = l.acquired_from.insert(node.0, ()).is_none();
            stx.nodes[node.0 as usize].stats.lock_acquires += 1;
            if l.holder.is_none() {
                // A fresh lock acquired by its manager is also local.
                let local_grant =
                    l.holder_node == Some(node) || (l.holder_node.is_none() && manager == node);
                l.holder = Some(sim.tid());
                l.holder_node = Some(node);
                (true, first_time, local_grant, manager)
            } else {
                l.waiters.push_back((sim.tid(), node));
                (false, first_time, false, manager)
            }
        };

        if first_time {
            sim.advance(self.cfg.costs.lock_first_time_ns);
            if node != self.master {
                // First-time bookkeeping reads the lock record remotely.
                let done = self.cluster.san.fetch(node, self.master, 16, sim.now());
                sim.clock_at_least(done);
            }
        }

        if granted {
            if !local_grant && node != manager {
                // Request/grant round trip through the manager.
                let req = self.cluster.san.notify(node, manager, sim.now());
                let grant = self
                    .cluster
                    .san
                    .notify(manager, node, req.arrival + self.cfg.costs.lock_handler_ns);
                sim.clock_at_least(grant.arrival);
            } else if !local_grant {
                sim.advance(self.cfg.costs.lock_handler_ns);
            }
        } else {
            // Request reaches the manager; we wait for a grant from the
            // releasing thread.
            if node != manager {
                let req = self.cluster.san.notify(node, manager, sim.now());
                sim.clock_at_least(req.local_done);
            }
            sim.block();
            // A waiter unparked by crash recovery (its queue entry purged)
            // must die here, before it acts on a grant it never got.
            self.crash_check(sim);
        }

        // With lock-data forwarding the grant carries hot-page contents,
        // so the acquire can refresh instead of invalidate.
        self.acquire_on_lock(sim);
        if let Some(o) = self.obs_if_on() {
            o.span(
                obs::Layer::Sync,
                node,
                sim.tid().0,
                t0,
                sim.now().saturating_since(t0),
                obs::Event::LockWait { id },
            );
        }
    }

    /// Attempts to acquire system lock `id` without blocking. On success
    /// performs the RC acquire and returns `true`.
    pub fn try_lock(&self, sim: &Sim, id: u64) -> bool {
        self.crash_check(sim);
        sim.op_point(self.cfg.costs.lock_local_ns);
        let node = sim.node();
        let (granted, local_grant, manager) = {
            let mut st = self.state.lock();
            let stx = &mut *st;
            let l = stx.locks.entry(id).or_insert_with(|| LockState {
                manager: node,
                holder: None,
                holder_node: None,
                waiters: Default::default(),
                acquired_from: HashMap::new(),
            });
            let manager = l.manager;
            l.acquired_from.insert(node.0, ());
            if l.holder.is_none() {
                let local_grant =
                    l.holder_node == Some(node) || (l.holder_node.is_none() && manager == node);
                l.holder = Some(sim.tid());
                l.holder_node = Some(node);
                stx.nodes[node.0 as usize].stats.lock_acquires += 1;
                (true, local_grant, manager)
            } else {
                (false, false, manager)
            }
        };
        if granted {
            if !local_grant && node != manager {
                let req = self.cluster.san.notify(node, manager, sim.now());
                let grant = self
                    .cluster
                    .san
                    .notify(manager, node, req.arrival + self.cfg.costs.lock_handler_ns);
                sim.clock_at_least(grant.arrival);
            } else if !local_grant {
                sim.advance(self.cfg.costs.lock_handler_ns);
            }
            self.acquire_on_lock(sim);
            true
        } else {
            // A failed probe still costs the manager round trip when the
            // lock record lives elsewhere.
            if node != manager {
                let req = self.cluster.san.notify(node, manager, sim.now());
                let nack = self
                    .cluster
                    .san
                    .notify(manager, node, req.arrival + self.cfg.costs.lock_handler_ns);
                sim.clock_at_least(nack.arrival);
            }
            false
        }
    }

    /// Releases system lock `id` after flushing this node's dirty pages
    /// (the RC release).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the lock.
    pub fn unlock(&self, sim: &Sim, id: u64) {
        self.crash_check(sim);
        self.release(sim);
        sim.op_point(self.cfg.costs.lock_local_ns);
        let node = sim.node();

        let next = {
            let mut st = self.state.lock();
            let l = st.locks.get_mut(&id).expect("unlock of unknown lock");
            assert_eq!(l.holder, Some(sim.tid()), "unlock by non-holder");
            match l.waiters.pop_front() {
                Some((tid, wnode)) => {
                    l.holder = Some(tid);
                    l.holder_node = Some(wnode);
                    Some((tid, wnode, l.manager))
                }
                None => {
                    l.holder = None;
                    None
                }
            }
        };

        if let Some((tid, wnode, manager)) = next {
            // Hand-off: release to manager, grant to the waiter.
            let rel_t = sim.now();
            let mut t = rel_t;
            if node != manager {
                t = self.cluster.san.notify(node, manager, t).arrival;
            }
            t = t + self.cfg.costs.lock_handler_ns;
            if manager != wnode {
                t = self.cluster.san.notify(manager, wnode, t).arrival;
            }
            if t > rel_t {
                if let Some(o) = self.obs_if_on() {
                    // Causal edge: this release to the next holder's grant.
                    o.edge(
                        obs::EdgeKind::LockHandoff,
                        node,
                        sim.tid().0,
                        rel_t,
                        wnode,
                        tid.0,
                        t,
                        id,
                    );
                }
            }
            sim.wake(tid, t);
        }
    }

    /// Native (GeNIMA) barrier across `n` threads: releases, waits for all
    /// arrivals at the manager, then acquires on departure.
    ///
    /// Distinct barrier episodes may reuse the same `id`.
    pub fn barrier(&self, sim: &Sim, id: u64, n: usize) {
        assert!(n > 0, "barrier over zero threads");
        self.crash_check(sim);
        let t0 = sim.now();
        // See `lock`: keep the metric-series windows moving at sync
        // entry; zero simulated cost, no-op when no series runs.
        if let Some(o) = self.obs_if_on() {
            o.series_tick(t0);
        }
        self.release(sim);
        sim.op_point(self.cfg.costs.lock_local_ns);
        let node = sim.node();
        let manager = self.master;

        let arrive_at_mgr = if node != manager {
            self.cluster.san.send(node, manager, 8, sim.now()).arrival
        } else {
            sim.now()
        };

        // Threads removed by node-crash recovery never arrive; their
        // arrivals are forgiven via the discount (always 0 without chaos,
        // leaving the release condition untouched).
        let discount = self.crashed_discount.load(Ordering::Relaxed) as usize;
        let is_last = {
            let mut st = self.state.lock();
            let stx = &mut *st;
            stx.nodes[node.0 as usize].stats.barrier_waits += 1;
            let b = stx
                .barriers
                .entry(id)
                .or_insert_with(BarrierState::default);
            b.count += 1;
            b.expected = n;
            b.max_arrival = b.max_arrival.max(arrive_at_mgr);
            if b.count + discount < n {
                b.waiters.push((sim.tid(), node));
                false
            } else {
                true
            }
        };

        if !is_last {
            sim.block();
            // Unparked by crash recovery rather than a release: die before
            // running code that believes the barrier completed.
            self.crash_check(sim);
        } else {
            let (waiters, release_t) = {
                let mut st = self.state.lock();
                let b = st.barriers.get_mut(&id).expect("barrier state");
                let release_t =
                    b.max_arrival + self.cfg.costs.barrier_per_node_ns * n as u64;
                let waiters = std::mem::take(&mut b.waiters);
                b.count = 0;
                b.max_arrival = SimTime::ZERO;
                (waiters, release_t)
            };
            // Release messages fan out from the manager's NIC. Every
            // waiter pays the one-way latency from the manager; the
            // same-node case is rare and only saves 7.8us.
            let fan_t0 = sim.now();
            for (tid, wnode) in waiters {
                let wake_t = release_t + self.cluster.san.config().send_base_ns;
                if wake_t > fan_t0 {
                    if let Some(o) = self.obs_if_on() {
                        // Causal edge: last arrival's fan-out to each
                        // waiter's departure.
                        o.edge(
                            obs::EdgeKind::BarrierRelease,
                            node,
                            sim.tid().0,
                            fan_t0,
                            wnode,
                            tid.0,
                            wake_t,
                            id,
                        );
                    }
                }
                sim.wake(tid, wake_t);
            }
            let back = if node != manager {
                self.cluster.san.config().send_base_ns
            } else {
                0
            };
            sim.clock_at_least(release_t + back);
        }

        self.acquire(sim);
        if let Some(o) = self.obs_if_on() {
            o.span(
                obs::Layer::Sync,
                node,
                sim.tid().0,
                t0,
                sim.now().saturating_since(t0),
                obs::Event::BarrierWait { id },
            );
        }
    }

    /// Forgives `k` future barrier arrivals: crash recovery calls this once
    /// per thread it removes, so barriers the dead threads can never reach
    /// still release once every surviving participant has arrived.
    pub fn crash_add_discount(&self, k: u64) {
        self.crashed_discount.fetch_add(k, Ordering::Relaxed);
    }

    /// Purges a crashed thread from every lock wait queue and barrier
    /// waiter list. A purged barrier waiter's arrival is also retracted —
    /// the crash discount stands in for it, so it must not count twice.
    /// Returns whether the thread was parked in any of them; if so the
    /// caller must wake it so its OS thread can unwind (it was removed
    /// from the queue here, so the wake cannot race a legitimate one).
    /// Per-entry `retain` keeps the result independent of map order, so
    /// replay with the same plan stays deterministic.
    pub fn crash_purge_waiter(&self, tid: Tid) -> bool {
        let mut st = self.state.lock();
        let mut found = false;
        for l in st.locks.values_mut() {
            let before = l.waiters.len();
            l.waiters.retain(|(w, _)| *w != tid);
            found |= l.waiters.len() != before;
        }
        for b in st.barriers.values_mut() {
            let before = b.waiters.len();
            b.waiters.retain(|(w, _)| *w != tid);
            let removed = before - b.waiters.len();
            b.count -= removed;
            found |= removed > 0;
        }
        found
    }

    /// Hands every lock held by a dead thread to its next waiter. Call
    /// after [`SvmSystem::crash_purge_waiter`] ran for *all* of `dead`, so
    /// no grant can land on another casualty. A dead holder cannot run the
    /// release hand-off itself; the recovery thread (`sim`) grants on its
    /// behalf. Returns the woken grantees. Iteration is in sorted id
    /// order so replay with the same plan stays deterministic.
    pub fn crash_handoff_locks(&self, sim: &Sim, dead: &[Tid], node: NodeId) -> Vec<Tid> {
        let mut woken = Vec::new();
        let lock_ids: Vec<u64> = {
            let st = self.state.lock();
            let mut v: Vec<u64> = st.locks.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for id in lock_ids {
            let handoff = {
                let mut st = self.state.lock();
                let Some(l) = st.locks.get_mut(&id) else {
                    continue;
                };
                let dead_holder = l.holder.map_or(false, |h| dead.contains(&h));
                if !dead_holder {
                    None
                } else {
                    match l.waiters.pop_front() {
                        Some((next, wnode)) => {
                            l.holder = Some(next);
                            l.holder_node = Some(wnode);
                            Some((l.holder.expect("just set"), wnode))
                        }
                        None => {
                            l.holder = None;
                            // Never leave ownership cached at a dead node:
                            // the next acquirer must pay the remote path.
                            l.holder_node = None;
                            None
                        }
                    }
                }
            };
            if let Some((next, wnode)) = handoff {
                let t = sim.now() + self.cfg.costs.lock_handler_ns;
                if let Some(o) = self.obs_if_on() {
                    o.edge(
                        obs::EdgeKind::Recovery,
                        node,
                        sim.tid().0,
                        sim.now(),
                        wnode,
                        next.0,
                        t,
                        id,
                    );
                }
                sim.wake(next, t);
                woken.push(next);
            }
        }
        woken
    }

    /// Releases every barrier that only dead threads were keeping closed
    /// (arrivals + discount cover the expected count). Crash recovery calls
    /// this after removing the crashed threads and bumping the discount.
    /// Returns the woken waiters. Sorted-id iteration keeps replay
    /// deterministic.
    pub fn crash_release_ready_barriers(&self, sim: &Sim) -> Vec<Tid> {
        let discount = self.crashed_discount.load(Ordering::Relaxed) as usize;
        if discount == 0 {
            return Vec::new();
        }
        let ready: Vec<u64> = {
            let st = self.state.lock();
            let mut v: Vec<u64> = st
                .barriers
                .iter()
                .filter(|(_, b)| b.count > 0 && b.expected > 0 && b.count + discount >= b.expected)
                .map(|(id, _)| *id)
                .collect();
            v.sort_unstable();
            v
        };
        let mut woken = Vec::new();
        for id in ready {
            let (waiters, release_t) = {
                let mut st = self.state.lock();
                let b = st.barriers.get_mut(&id).expect("ready barrier");
                let release_t =
                    b.max_arrival + self.cfg.costs.barrier_per_node_ns * b.expected as u64;
                let waiters = std::mem::take(&mut b.waiters);
                b.count = 0;
                b.max_arrival = SimTime::ZERO;
                (waiters, release_t)
            };
            // The nominal release may predate the crash that unblocked it;
            // never wake into the past.
            let base = release_t.max(sim.now());
            for (w, wnode) in waiters {
                let wake_t = base + self.cluster.san.config().send_base_ns;
                if let Some(o) = self.obs_if_on() {
                    o.edge(
                        obs::EdgeKind::Recovery,
                        sim.node(),
                        sim.tid().0,
                        sim.now(),
                        wnode,
                        w.0,
                        wake_t,
                        id,
                    );
                }
                sim.wake(w, wake_t);
                woken.push(w);
            }
        }
        woken
    }
}

#[cfg(test)]
mod tests {
    use crate::api::SvmSystem;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::config::SvmConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn system(nodes: usize, cpus: usize, cfg: SvmConfig) -> (Arc<Cluster>, Arc<SvmSystem>) {
        let cluster = Cluster::build(ClusterConfig::small(nodes, cpus));
        let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
        (cluster, sys)
    }

    #[test]
    fn lock_excludes_and_hands_off() {
        let (cluster, sys) = system(2, 1, SvmConfig::base());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let s3 = Arc::clone(&s2);
                let o3 = Arc::clone(&o2);
                let child = s2.create(sim, move |csim| {
                    s3.lock(csim, 1);
                    o3.lock().unwrap().push("child");
                    csim.advance(1_000);
                    s3.unlock(csim, 1);
                });
                s2.lock(sim, 1);
                o2.lock().unwrap().push("main");
                sim.advance(50_000);
                s2.unlock(sim, 1);
                sim.wait_exit(child);
            })
            .unwrap();
        let v = order.lock().unwrap().clone();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn local_relock_is_cheap() {
        let (cluster, sys) = system(2, 1, SvmConfig::base());
        let costs = Arc::new(std::sync::Mutex::new(Vec::new()));
        let c2 = Arc::clone(&costs);
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                // First acquire (first time, includes bookkeeping).
                let t0 = sim.now();
                s2.lock(sim, 7);
                let first = sim.now() - t0;
                s2.unlock(sim, 7);
                // Re-acquire from the same node: ownership cached.
                let t1 = sim.now();
                s2.lock(sim, 7);
                let second = sim.now() - t1;
                s2.unlock(sim, 7);
                c2.lock().unwrap().push((first, second));
            })
            .unwrap();
        let (first, second) = costs.lock().unwrap()[0];
        assert!(
            second < first,
            "cached local relock ({second}ns) should be cheaper than first ({first}ns)"
        );
        assert!(second < 10_000, "local lock should be a few us, got {second}ns");
    }

    #[test]
    fn barrier_synchronizes_all() {
        let (cluster, sys) = system(2, 2, SvmConfig::base());
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let n = 4;
                let mut kids = Vec::new();
                for i in 0..n - 1 {
                    let s3 = Arc::clone(&s2);
                    let h3 = Arc::clone(&h2);
                    kids.push(s2.create(sim, move |csim| {
                        csim.advance(1_000 * (i as u64 + 1));
                        h3.fetch_add(1, Ordering::SeqCst);
                        s3.barrier(csim, 9, n);
                        // After the barrier everyone must have arrived.
                        assert_eq!(h3.load(Ordering::SeqCst), (n - 1) as u64);
                    }));
                }
                s2.barrier(sim, 9, n);
                assert_eq!(h2.load(Ordering::SeqCst), (n - 1) as u64);
                for k in kids {
                    sim.wait_exit(k);
                }
            })
            .unwrap();
    }

    #[test]
    fn barrier_reusable_across_episodes() {
        let (cluster, sys) = system(2, 1, SvmConfig::cables());
        let s2 = Arc::clone(&sys);
        cluster
            .engine
            .clone()
            .run(cluster.nodes()[0], move |sim| {
                let s3 = Arc::clone(&s2);
                let child = s2.create(sim, move |csim| {
                    for _ in 0..3 {
                        s3.barrier(csim, 1, 2);
                    }
                });
                for _ in 0..3 {
                    s2.barrier(sim, 1, 2);
                }
                sim.wait_exit(child);
            })
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "unlock of unknown lock")]
    fn unlock_by_non_holder_panics() {
        let (cluster, sys) = system(1, 1, SvmConfig::base());
        let s2 = Arc::clone(&sys);
        let result = cluster.engine.clone().run(cluster.nodes()[0], move |sim| {
            s2.unlock(sim, 3);
        });
        // Re-panic with the embedded message for should_panic to see.
        if let Err(e) = result {
            panic!("{e}");
        }
    }
}
