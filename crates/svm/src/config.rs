//! Protocol configuration and cost constants.

use serde::{Deserialize, Serialize};

/// Which system the protocol engine is modelling.
///
/// The engine implements one home-based release-consistency protocol; the
/// two systems of the paper differ in home-placement granularity,
/// registration strategy and bookkeeping costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoMode {
    /// The original tuned SVM system (GeNIMA): page-granular first-touch
    /// homes bound during initialization, per-run NIC registration,
    /// single-writer write-through optimization available.
    Base,
    /// CableS: dynamic placement through remapping, which WindowsNT limits
    /// to 64 KB granularity; home frames live in one per-node region
    /// (double virtual mapping), so registration pressure is constant.
    Cables,
}

/// Cost constants of the protocol engine (nanoseconds unless noted).
///
/// Calibrated so the microbenchmarks of the paper's Table 4 land in the
/// right regime; see `EXPERIMENTS.md` for measured-vs-paper values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmCosts {
    /// Protocol handler work per page fault (on top of the OS fault cost).
    pub fault_handler_ns: u64,
    /// Fixed cost of producing a diff for one page at release (scan of the
    /// dirty map and message construction).
    pub diff_build_ns: u64,
    /// Applying one write notice at acquire (includes the protection
    /// change).
    pub notice_apply_ns: u64,
    /// Directory bookkeeping executed locally on a placement/migration.
    pub placement_bookkeeping_ns: u64,
    /// Lock manager handler work per request.
    pub lock_handler_ns: u64,
    /// Local lock bookkeeping on acquire/release.
    pub lock_local_ns: u64,
    /// Extra bookkeeping the first time a node acquires a given lock.
    pub lock_first_time_ns: u64,
    /// Barrier manager processing per participating node.
    pub barrier_per_node_ns: u64,
    /// Local cost charged per shared-memory access by the access check.
    pub access_check_ns: u64,
    /// OS cost of creating a thread locally.
    pub os_thread_create_ns: u64,
    /// Library bookkeeping on thread creation (base system).
    pub create_bookkeeping_ns: u64,
}

impl Default for SvmCosts {
    fn default() -> Self {
        SvmCosts {
            fault_handler_ns: 4_000,
            diff_build_ns: 4_000,
            notice_apply_ns: 1_000,
            placement_bookkeeping_ns: 30_000,
            lock_handler_ns: 5_000,
            lock_local_ns: 2_000,
            lock_first_time_ns: 8_000,
            barrier_per_node_ns: 8_000,
            access_check_ns: 15,
            os_thread_create_ns: 626_000,
            create_bookkeeping_ns: 30_000,
        }
    }
}

/// Counter-driven home-migration policy (the sharing-aware placement
/// extension). Where [`SvmConfig::migration_threshold`] keys on raw
/// sole-remote-differ streaks, this policy keys on per-chunk sharing
/// counters the protocol maintains incrementally — sharer sets, remote
/// fetch+diff traffic per node, ping-pong handoffs — the same taxonomy
/// `obs::sharing` ranks pages by, but kept in the protocol directory so
/// decisions never depend on whether observability is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// Minimum remote fetch+diff messages a chunk must have generated
    /// since its last (re)homing before migration is considered.
    pub min_traffic: u32,
    /// Minimum share (percent) of the chunk's remote traffic the
    /// candidate node must account for to become the new home. The
    /// dominance test is what keeps ping-ponging chunks — traffic split
    /// between alternating nodes — in place instead of thrashing.
    pub dominance_pct: u32,
    /// Release-time considerations a chunk sits out after migrating
    /// before it may migrate again (hysteresis against home thrash).
    pub cooldown_releases: u32,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy {
            min_traffic: 8,
            dominance_pct: 60,
            cooldown_releases: 4,
        }
    }
}

/// Full protocol configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Which system is being modelled.
    pub mode: ProtoMode,
    /// Home-placement granularity in pages (1 for [`ProtoMode::Base`],
    /// 16 — the NT 64 KB chunk — for [`ProtoMode::Cables`]).
    pub home_granularity_pages: u64,
    /// Enable the base system's single-writer write-through optimization
    /// (paper §3.4, responsible for the OCEAN gap).
    pub write_through_single_writer: bool,
    /// Home-migration policy (an extension: the paper provides the
    /// mechanisms but no policy, §2.1.3). `Some(k)` migrates a placement
    /// chunk to a node after `k` consecutive releases in which that node
    /// was its only remote writer; `None` reproduces the paper.
    pub migration_threshold: Option<u32>,
    /// Counter-driven migration policy (CableS mode, like
    /// `migration_threshold`). When set it *replaces* the streak policy:
    /// chunks migrate to the node dominating their remote fetch+diff
    /// traffic, with a traffic floor and post-migration cooldown. `None`
    /// (with `migration_threshold: None`) reproduces the paper.
    pub placement_policy: Option<PlacementPolicy>,
    /// Release-time diff batching: ship all diffs bound for the same home
    /// as one multi-segment VMMC write (one message header and one fence
    /// contribution per home instead of per page), merging runs that are
    /// adjacent across page boundaries within a chunk. Value-preserving;
    /// changes message counts and simulated time only. Off reproduces the
    /// per-page protocol exactly.
    pub batch_diffs: bool,
    /// Adaptive multi-page prefetch degree: after a per-thread stride
    /// detector confirms a sequential/strided fault run, up to this many
    /// extra pages from the same home ride along with the demand fetch in
    /// one batched message. `0` disables prefetching (the per-page
    /// protocol). Prefetched copies obey normal release consistency: the
    /// same acquire-time write notices that invalidate demand-fetched
    /// copies invalidate them.
    pub prefetch_degree: u32,
    /// Consecutive same-stride faults required before the detector trusts
    /// the run and starts prefetching. Ignored when `prefetch_degree == 0`.
    pub prefetch_confirm: u32,
    /// Lock-data forwarding (GCS-style): at lock acquisition, pages made
    /// stale by pending write notices whose demand-fetch count reached
    /// `lock_forward_hot` are *refreshed* from home in one batched fetch
    /// piggybacked on the grant, instead of invalidated and re-fetched on
    /// the first post-acquire fault. Off reproduces invalidate-only
    /// acquires exactly.
    pub lock_forwarding: bool,
    /// Demand-fetch count a page must reach before lock forwarding ships
    /// its contents (cold pages are still invalidated — forwarding them
    /// would waste grant-message bytes).
    pub lock_forward_hot: u32,
    /// Cost constants.
    pub costs: SvmCosts,
}

impl SvmConfig {
    /// Configuration of the original tuned SVM system (GeNIMA).
    pub fn base() -> Self {
        SvmConfig {
            mode: ProtoMode::Base,
            home_granularity_pages: 1,
            write_through_single_writer: true,
            migration_threshold: None,
            placement_policy: None,
            batch_diffs: false,
            prefetch_degree: 0,
            prefetch_confirm: 2,
            lock_forwarding: false,
            lock_forward_hot: 4,
            costs: SvmCosts::default(),
        }
    }

    /// Configuration of the CableS memory subsystem on WindowsNT.
    pub fn cables() -> Self {
        SvmConfig {
            mode: ProtoMode::Cables,
            home_granularity_pages: 16,
            write_through_single_writer: false,
            migration_threshold: None,
            placement_policy: None,
            batch_diffs: false,
            prefetch_degree: 0,
            prefetch_confirm: 2,
            lock_forwarding: false,
            lock_forward_hot: 4,
            costs: SvmCosts::default(),
        }
    }

    /// Applies the three protocol-traffic optimizations as a 3-bit grid
    /// point (used by the ablation bench and tests). `prefetch` enables a
    /// degree-4 prefetcher with the default confirmation threshold.
    pub fn with_protocol_opts(mut self, batch: bool, prefetch: bool, forward: bool) -> Self {
        self.batch_diffs = batch;
        self.prefetch_degree = if prefetch { 4 } else { 0 };
        self.lock_forwarding = forward;
        self
    }

    /// Enables the counter-driven placement policy with the default
    /// parameters (the placement bench's on-cell).
    pub fn with_placement_policy(mut self) -> Self {
        self.placement_policy = Some(PlacementPolicy::default());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let b = SvmConfig::base();
        let c = SvmConfig::cables();
        assert_eq!(b.home_granularity_pages, 1);
        assert_eq!(c.home_granularity_pages, 16);
        assert!(b.write_through_single_writer);
        assert!(!c.write_through_single_writer);
    }

    #[test]
    fn protocol_opts_default_off_in_both_presets() {
        for cfg in [SvmConfig::base(), SvmConfig::cables()] {
            assert!(!cfg.batch_diffs);
            assert_eq!(cfg.prefetch_degree, 0);
            assert!(!cfg.lock_forwarding);
            assert!(cfg.placement_policy.is_none());
        }
        let pol = SvmConfig::cables().with_placement_policy();
        let p = pol.placement_policy.expect("policy set");
        assert!(p.min_traffic > 0 && p.dominance_pct > 50);
        let on = SvmConfig::cables().with_protocol_opts(true, true, true);
        assert!(on.batch_diffs && on.lock_forwarding);
        assert_eq!(on.prefetch_degree, 4);
    }

    #[test]
    fn default_costs_are_positive() {
        let c = SvmCosts::default();
        assert!(c.fault_handler_ns > 0);
        assert!(c.os_thread_create_ns > c.create_bookkeeping_ns);
    }
}
