//! # cables-vmmc — Virtual Memory-Mapped Communication
//!
//! Models VMMC, the user-level communication layer the paper's cluster
//! uses on top of Myrinet: nodes *export* (register) memory regions with
//! their NIC, other nodes *import* them, and then perform **direct remote
//! operations** — writes and fetches that move data between physical
//! memories without remote processor intervention — plus **notifications**
//! that dispatch a handler on the remote host.
//!
//! The crate enforces the SAN resource limits of paper §2.1.1:
//!
//! - the number of regions that can be registered on a NIC
//!   (*"usually a few thousand"*),
//! - the total amount of registered memory (*"a few hundred MBytes"*),
//! - the total amount of pinned memory (an OS limit).
//!
//! These limits are what force CableS's double-mapping design, and what
//! make the base system unable to run OCEAN on 32 processors (paper §3.4).
//!
//! Timing comes from the [`san`] cost model; data movement is real byte
//! copies between [`memsim`] frames. Remote effects are applied at issue
//! time (callers order themselves with `Sim::sync_point` first), which is
//! indistinguishable for data-race-free programs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use chaos::{ChaosEngine, ResourceOp};
use obs::{EdgeKind, Event, Layer, ObsSink, NIC_TRACK};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use memsim::{ClusterMem, FrameId, PAGE_SIZE};
use san::{San, SendTiming};
use sim::{NodeId, SimTime};

/// NIC and registration resource limits plus registration costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmmcConfig {
    /// Maximum regions registered per NIC (exports + imports).
    pub max_regions_per_nic: u64,
    /// Maximum bytes of memory registered per NIC (exported regions).
    pub max_registered_bytes: u64,
    /// Maximum bytes of pinned memory per node (OS limit).
    pub max_pinned_bytes: u64,
    /// Cost of registering a new region with the NIC, ns.
    pub register_op_ns: u64,
    /// Cost of extending an already-registered region, ns.
    pub extend_op_ns: u64,
    /// Cost of importing a remote region, ns (excluding the network
    /// round-trip, which callers charge separately).
    pub import_op_ns: u64,
}

impl Default for VmmcConfig {
    fn default() -> Self {
        VmmcConfig {
            max_regions_per_nic: 4096,
            max_registered_bytes: 256 << 20,
            max_pinned_bytes: 384 << 20,
            register_op_ns: 40_000,
            extend_op_ns: 5_000,
            import_op_ns: 25_000,
        }
    }
}

impl VmmcConfig {
    /// The configuration modelling the paper's Myrinet NICs.
    pub fn paper() -> Self {
        VmmcConfig::default()
    }
}

/// Identifier of an exported region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Errors from VMMC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmcError {
    /// The NIC cannot register more regions.
    RegionLimit {
        /// Node whose NIC is full.
        node: NodeId,
        /// The configured limit.
        limit: u64,
    },
    /// Registering would exceed the NIC's registered-memory limit.
    RegisteredBytesLimit {
        /// Node whose NIC is full.
        node: NodeId,
        /// The configured limit in bytes.
        limit: u64,
    },
    /// Pinning would exceed the OS pinned-memory limit.
    PinnedBytesLimit {
        /// Node that hit the limit.
        node: NodeId,
        /// The configured limit in bytes.
        limit: u64,
    },
    /// Operation referenced an unknown region.
    NoSuchRegion(RegionId),
    /// A remote operation targeted a region the issuing node never imported.
    NotImported {
        /// Issuing node.
        node: NodeId,
        /// Target region.
        region: RegionId,
    },
    /// Offset/length outside the region.
    OutOfBounds {
        /// Target region.
        region: RegionId,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
    },
}

impl fmt::Display for VmmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmcError::RegionLimit { node, limit } => {
                write!(f, "NIC region limit ({limit}) exceeded on {node}")
            }
            VmmcError::RegisteredBytesLimit { node, limit } => {
                write!(f, "NIC registered-memory limit ({limit} bytes) exceeded on {node}")
            }
            VmmcError::PinnedBytesLimit { node, limit } => {
                write!(f, "OS pinned-memory limit ({limit} bytes) exceeded on {node}")
            }
            VmmcError::NoSuchRegion(r) => write!(f, "no such region {r}"),
            VmmcError::NotImported { node, region } => {
                write!(f, "{node} has not imported {region}")
            }
            VmmcError::OutOfBounds {
                region,
                offset,
                len,
            } => write!(f, "access [{offset}, +{len}) out of bounds of {region}"),
        }
    }
}

impl std::error::Error for VmmcError {}

#[derive(Debug)]
struct Region {
    owner: NodeId,
    frames: Vec<FrameId>,
    importers: Vec<NodeId>,
}

impl Region {
    fn bytes(&self) -> u64 {
        self.frames.len() as u64 * PAGE_SIZE
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct NicState {
    regions: u64,
    registered_bytes: u64,
}

/// Per-node NIC registration usage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NicStats {
    /// Regions registered on this NIC (exports + imports).
    pub regions: u64,
    /// Bytes of exported memory registered on this NIC.
    pub registered_bytes: u64,
}

struct State {
    regions: HashMap<u64, Region>,
    nics: Vec<NicState>,
    next_region: u64,
}

/// The VMMC communication layer.
pub struct Vmmc {
    cfg: VmmcConfig,
    san: Arc<San>,
    mem: Arc<ClusterMem>,
    state: Mutex<State>,
    obs: OnceLock<Arc<ObsSink>>,
    chaos: OnceLock<Arc<ChaosEngine>>,
}

impl fmt::Debug for Vmmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Vmmc")
            .field("regions", &s.regions.len())
            .field("nodes", &s.nics.len())
            .finish()
    }
}

impl Vmmc {
    /// Creates the layer over a network and cluster memory.
    pub fn new(cfg: VmmcConfig, san: Arc<San>, mem: Arc<ClusterMem>) -> Self {
        Vmmc {
            cfg,
            san,
            mem,
            state: Mutex::new(State {
                regions: HashMap::new(),
                nics: Vec::new(),
                next_region: 0,
            }),
            obs: OnceLock::new(),
            chaos: OnceLock::new(),
        }
    }

    /// Attaches the cluster's observability sink, forwarding it to the
    /// underlying [`San`] (done once by `Cluster::build`).
    pub fn set_obs(&self, sink: Arc<ObsSink>) {
        self.san.set_obs(Arc::clone(&sink));
        let _ = self.obs.set(sink);
    }

    /// Attaches the cluster's chaos engine, forwarding it to the
    /// underlying [`San`] (done once by `Cluster::set_chaos`; later calls
    /// are ignored).
    pub fn set_chaos(&self, chaos: Arc<ChaosEngine>) {
        self.san.set_chaos(Arc::clone(&chaos));
        let _ = self.chaos.set(chaos);
    }

    /// The chaos engine, if attached and armed for resource pressure.
    #[inline]
    fn chaos_resource(&self) -> Option<&ChaosEngine> {
        match self.chaos.get() {
            Some(c) if c.resource_armed() => Some(c),
            _ => None,
        }
    }

    /// The chaos engine, if attached and armed for wire faults.
    #[inline]
    fn chaos_wire(&self) -> Option<&ChaosEngine> {
        match self.chaos.get() {
            Some(c) if c.wire_armed() => Some(c),
            _ => None,
        }
    }

    /// The sink, if attached and enabled (hot-path check).
    #[inline]
    fn obs_on(&self) -> Option<&ObsSink> {
        match self.obs.get() {
            Some(o) if o.on() => Some(o),
            _ => None,
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &VmmcConfig {
        &self.cfg
    }

    /// The underlying network model.
    pub fn san(&self) -> &Arc<San> {
        &self.san
    }

    /// The underlying cluster memory.
    pub fn mem(&self) -> &Arc<ClusterMem> {
        &self.mem
    }

    /// Ensures NIC state exists for `node`.
    pub fn ensure_node(&self, node: NodeId) {
        self.san.ensure_node(node);
        self.mem.ensure_node(node);
        let mut s = self.state.lock();
        while s.nics.len() <= node.0 as usize {
            s.nics.push(NicState::default());
        }
    }

    /// Registration usage of `node`'s NIC.
    pub fn nic_stats(&self, node: NodeId) -> NicStats {
        let s = self.state.lock();
        s.nics
            .get(node.0 as usize)
            .map(|n| NicStats {
                regions: n.regions,
                registered_bytes: n.registered_bytes,
            })
            .unwrap_or_default()
    }

    /// Exports (registers) a region of `owner`'s frames with its NIC,
    /// pinning them.
    ///
    /// # Errors
    ///
    /// Fails if the NIC's region count, registered-byte, or the OS
    /// pinned-byte limit would be exceeded.
    pub fn export_region(
        &self,
        owner: NodeId,
        frames: Vec<FrameId>,
    ) -> Result<RegionId, VmmcError> {
        self.ensure_node(owner);
        // Chaos: transient NIC pressure makes the registration fail as if
        // the region table were full; callers retry (paper §3.4 regime).
        if let Some(c) = self.chaos_resource() {
            if c.resource_inject(ResourceOp::Export, owner.0) {
                return Err(VmmcError::RegionLimit {
                    node: owner,
                    limit: self.cfg.max_regions_per_nic,
                });
            }
        }
        let bytes = frames.len() as u64 * PAGE_SIZE;
        let mut s = self.state.lock();
        let nic = &s.nics[owner.0 as usize];
        if nic.regions + 1 > self.cfg.max_regions_per_nic {
            return Err(VmmcError::RegionLimit {
                node: owner,
                limit: self.cfg.max_regions_per_nic,
            });
        }
        if nic.registered_bytes + bytes > self.cfg.max_registered_bytes {
            return Err(VmmcError::RegisteredBytesLimit {
                node: owner,
                limit: self.cfg.max_registered_bytes,
            });
        }
        let newly_pinned: u64 = frames
            .iter()
            .filter(|f| !self.mem.is_pinned(**f))
            .count() as u64
            * PAGE_SIZE;
        if self.mem.stats(owner).pinned_bytes + newly_pinned > self.cfg.max_pinned_bytes {
            return Err(VmmcError::PinnedBytesLimit {
                node: owner,
                limit: self.cfg.max_pinned_bytes,
            });
        }
        for f in &frames {
            debug_assert_eq!(f.node, owner, "exporting a foreign frame");
            self.mem.pin_frame(*f);
        }
        let id = RegionId(s.next_region);
        s.next_region += 1;
        s.nics[owner.0 as usize].regions += 1;
        s.nics[owner.0 as usize].registered_bytes += bytes;
        let nic_now = s.nics[owner.0 as usize];
        s.regions.insert(
            id.0,
            Region {
                owner,
                frames,
                importers: Vec::new(),
            },
        );
        drop(s);
        if let Some(o) = self.obs_on() {
            o.gauge_max("vmmc.max_nic_regions", nic_now.regions);
            o.gauge_max("vmmc.max_registered_bytes", nic_now.registered_bytes);
        }
        Ok(id)
    }

    /// Extends an already-exported region with more frames (the
    /// double-mapping trick: the home-pages region grows but stays a
    /// *single* NIC registration).
    ///
    /// # Errors
    ///
    /// Fails on the registered-byte or pinned-byte limits, or if the
    /// region does not exist.
    pub fn extend_region(
        &self,
        region: RegionId,
        frames: Vec<FrameId>,
    ) -> Result<(), VmmcError> {
        let bytes = frames.len() as u64 * PAGE_SIZE;
        let mut s = self.state.lock();
        let owner = s
            .regions
            .get(&region.0)
            .ok_or(VmmcError::NoSuchRegion(region))?
            .owner;
        // Chaos: transient registered-memory pressure on the grow path.
        if let Some(c) = self.chaos_resource() {
            if c.resource_inject(ResourceOp::Extend, owner.0) {
                return Err(VmmcError::RegisteredBytesLimit {
                    node: owner,
                    limit: self.cfg.max_registered_bytes,
                });
            }
        }
        if s.nics[owner.0 as usize].registered_bytes + bytes > self.cfg.max_registered_bytes {
            return Err(VmmcError::RegisteredBytesLimit {
                node: owner,
                limit: self.cfg.max_registered_bytes,
            });
        }
        let newly_pinned: u64 = frames
            .iter()
            .filter(|f| !self.mem.is_pinned(**f))
            .count() as u64
            * PAGE_SIZE;
        if self.mem.stats(owner).pinned_bytes + newly_pinned > self.cfg.max_pinned_bytes {
            return Err(VmmcError::PinnedBytesLimit {
                node: owner,
                limit: self.cfg.max_pinned_bytes,
            });
        }
        for f in &frames {
            self.mem.pin_frame(*f);
        }
        s.nics[owner.0 as usize].registered_bytes += bytes;
        let registered = s.nics[owner.0 as usize].registered_bytes;
        s.regions.get_mut(&region.0).unwrap().frames.extend(frames);
        drop(s);
        if let Some(o) = self.obs_on() {
            o.gauge_max("vmmc.max_registered_bytes", registered);
        }
        Ok(())
    }

    /// Imports a remote region into `importer`'s NIC so it may issue
    /// direct remote operations on it.
    ///
    /// # Errors
    ///
    /// Fails if the importer's NIC region limit would be exceeded or the
    /// region does not exist. Importing twice is idempotent.
    pub fn import_region(&self, importer: NodeId, region: RegionId) -> Result<(), VmmcError> {
        self.ensure_node(importer);
        let mut s = self.state.lock();
        let r = s
            .regions
            .get(&region.0)
            .ok_or(VmmcError::NoSuchRegion(region))?;
        if r.importers.contains(&importer) {
            return Ok(());
        }
        // Chaos: transient import-table pressure on the importer's NIC.
        if let Some(c) = self.chaos_resource() {
            if c.resource_inject(ResourceOp::Import, importer.0) {
                return Err(VmmcError::RegionLimit {
                    node: importer,
                    limit: self.cfg.max_regions_per_nic,
                });
            }
        }
        if s.nics[importer.0 as usize].regions + 1 > self.cfg.max_regions_per_nic {
            return Err(VmmcError::RegionLimit {
                node: importer,
                limit: self.cfg.max_regions_per_nic,
            });
        }
        s.nics[importer.0 as usize].regions += 1;
        s.regions.get_mut(&region.0).unwrap().importers.push(importer);
        Ok(())
    }

    /// Releases `importer`'s import of `region`, freeing one slot in its
    /// NIC region table. Used by the SVM layer to evict cold imports when
    /// the NIC runs out of resources (degraded-but-alive recovery).
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or was never imported by
    /// `importer`.
    pub fn unimport_region(&self, importer: NodeId, region: RegionId) -> Result<(), VmmcError> {
        let mut s = self.state.lock();
        let r = s
            .regions
            .get_mut(&region.0)
            .ok_or(VmmcError::NoSuchRegion(region))?;
        let Some(pos) = r.importers.iter().position(|&n| n == importer) else {
            return Err(VmmcError::NotImported {
                node: importer,
                region,
            });
        };
        r.importers.remove(pos);
        s.nics[importer.0 as usize].regions -= 1;
        Ok(())
    }

    /// Number of frames (pages) in a region.
    pub fn region_pages(&self, region: RegionId) -> Result<usize, VmmcError> {
        let s = self.state.lock();
        s.regions
            .get(&region.0)
            .map(|r| r.frames.len())
            .ok_or(VmmcError::NoSuchRegion(region))
    }

    /// The frame backing byte `offset` of `region`.
    pub fn region_frame(&self, region: RegionId, offset: u64) -> Result<FrameId, VmmcError> {
        let s = self.state.lock();
        let r = s
            .regions
            .get(&region.0)
            .ok_or(VmmcError::NoSuchRegion(region))?;
        let idx = (offset / PAGE_SIZE) as usize;
        r.frames
            .get(idx)
            .copied()
            .ok_or(VmmcError::OutOfBounds {
                region,
                offset,
                len: 0,
            })
    }

    fn check_remote(
        &self,
        from: NodeId,
        region: RegionId,
        offset: u64,
        len: u64,
    ) -> Result<(NodeId, Vec<(FrameId, usize, usize)>), VmmcError> {
        let s = self.state.lock();
        let r = s
            .regions
            .get(&region.0)
            .ok_or(VmmcError::NoSuchRegion(region))?;
        if r.owner != from && !r.importers.contains(&from) {
            return Err(VmmcError::NotImported { node: from, region });
        }
        if offset + len > r.bytes() {
            return Err(VmmcError::OutOfBounds {
                region,
                offset,
                len,
            });
        }
        // Split [offset, offset+len) into per-frame pieces.
        let mut pieces = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let frame_idx = (cur / PAGE_SIZE) as usize;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min((end - cur) as usize);
            pieces.push((r.frames[frame_idx], in_frame, take));
            cur += take as u64;
        }
        Ok((r.owner, pieces))
    }

    /// Direct remote write: deposits `data` at `offset` within `region` on
    /// its owner, without remote processor intervention.
    ///
    /// Returns the SAN timing; the sender's CPU is busy until
    /// `local_done`, the data is remotely visible at `arrival`.
    ///
    /// # Errors
    ///
    /// Fails if the region is unknown, not imported by `from`, or the
    /// range is out of bounds.
    pub fn remote_write(
        &self,
        from: NodeId,
        region: RegionId,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<SendTiming, VmmcError> {
        let (owner, pieces) = self.check_remote(from, region, offset, data.len() as u64)?;
        let timing = if owner == from {
            // Local deposit: a memory copy, no SAN involvement.
            SendTiming {
                local_done: now,
                arrival: now,
            }
        } else {
            self.san.send(from, owner, data.len() as u64, now)
        };
        let mut cursor = 0usize;
        for (frame, in_frame, take) in pieces {
            self.mem
                .frame_write(frame, in_frame, &data[cursor..cursor + take]);
            cursor += take;
        }
        if let Some(o) = self.obs_on() {
            o.span(
                Layer::Vmmc,
                from,
                NIC_TRACK,
                now,
                timing.arrival.saturating_since(now),
                Event::VmmcWrite {
                    region: region.0,
                    bytes: data.len() as u64,
                },
            );
            if owner != from {
                // Region-level delivery arrow (the SAN layer draws the
                // wire-level one with byte counts; this one names the
                // region).
                o.edge(
                    EdgeKind::MsgSend,
                    from,
                    NIC_TRACK,
                    now,
                    owner,
                    NIC_TRACK,
                    timing.arrival,
                    region.0,
                );
            }
        }
        Ok(timing)
    }

    /// Direct remote fetch: synchronously reads `len` bytes at `offset`
    /// from `region` on its owner. Returns the data and the completion
    /// time at the requester.
    ///
    /// # Errors
    ///
    /// Fails if the region is unknown, not imported by `from`, or the
    /// range is out of bounds.
    pub fn remote_fetch(
        &self,
        from: NodeId,
        region: RegionId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimTime), VmmcError> {
        let (owner, pieces) = self.check_remote(from, region, offset, len)?;
        let done = if owner == from {
            now
        } else {
            // Chaos: a dropped fetch request or reply costs the requester
            // a timeout, after which the (idempotent) fetch is re-issued
            // with exponential backoff. Data is read exactly once, after
            // the final successful round-trip.
            let mut issue = now;
            if let Some(c) = self.chaos_wire() {
                let (r, timeout) = c.fetch_retries(from.0, owner.0);
                if r > 0 {
                    for i in 0..r {
                        let backoff = timeout << i;
                        if let Some(o) = self.obs_on() {
                            o.span(
                                Layer::Chaos,
                                from,
                                NIC_TRACK,
                                issue,
                                backoff,
                                Event::ChaosRetry {
                                    attempt: (i + 1) as u64,
                                    backoff_ns: backoff,
                                },
                            );
                        }
                        c.note_retry();
                        issue = issue + backoff;
                    }
                    // Recovery arrow: first (lost) issue to the re-issue
                    // that went through.
                    if let Some(o) = self.obs_on() {
                        o.edge(
                            EdgeKind::Recovery,
                            from,
                            NIC_TRACK,
                            now,
                            from,
                            NIC_TRACK,
                            issue,
                            region.0,
                        );
                    }
                }
            }
            self.san.fetch(from, owner, len, issue)
        };
        let mut data = vec![0u8; len as usize];
        let mut cursor = 0usize;
        for (frame, in_frame, take) in pieces {
            self.mem
                .frame_read(frame, in_frame, &mut data[cursor..cursor + take]);
            cursor += take;
        }
        if let Some(o) = self.obs_on() {
            o.span(
                Layer::Vmmc,
                from,
                NIC_TRACK,
                now,
                done.saturating_since(now),
                Event::VmmcFetch {
                    region: region.0,
                    bytes: len,
                },
            );
            if owner != from {
                o.edge(
                    EdgeKind::MsgFetch,
                    owner,
                    NIC_TRACK,
                    now,
                    from,
                    NIC_TRACK,
                    done,
                    region.0,
                );
            }
        }
        Ok((data, done))
    }

    /// Batched remote write: deposits several discontiguous segments of
    /// `region` on its owner in **one** SAN transaction (one base latency
    /// and one header per segment instead of one message per segment).
    ///
    /// `segs` is a list of `(offset, data)` pairs. Chaos faults apply to
    /// the batch as a whole — it is a single message, so a drop costs one
    /// retransmit of the whole batch and a duplicate redelivers the whole
    /// batch, keeping replays bit-identical with the unbatched protocol's
    /// fault handling.
    ///
    /// # Errors
    ///
    /// Fails if the region is unknown, not imported by `from`, or any
    /// segment is out of bounds; nothing is written on error.
    pub fn remote_write_multi(
        &self,
        from: NodeId,
        region: RegionId,
        segs: &[(u64, Vec<u8>)],
        now: SimTime,
    ) -> Result<SendTiming, VmmcError> {
        assert!(!segs.is_empty(), "empty batched write");
        let mut owner = None;
        let mut all_pieces = Vec::with_capacity(segs.len());
        for (offset, data) in segs {
            let (o, pieces) = self.check_remote(from, region, *offset, data.len() as u64)?;
            owner = Some(o);
            all_pieces.push(pieces);
        }
        let owner = owner.unwrap();
        let total: u64 = segs.iter().map(|(_, d)| d.len() as u64).sum();
        let timing = if owner == from {
            SendTiming {
                local_done: now,
                arrival: now,
            }
        } else {
            let lens: Vec<u64> = segs.iter().map(|(_, d)| d.len() as u64).collect();
            self.san.send_multi(from, owner, &lens, now)
        };
        for ((_, data), pieces) in segs.iter().zip(all_pieces) {
            let mut cursor = 0usize;
            for (frame, in_frame, take) in pieces {
                self.mem
                    .frame_write(frame, in_frame, &data[cursor..cursor + take]);
                cursor += take;
            }
        }
        if let Some(o) = self.obs_on() {
            o.span(
                Layer::Vmmc,
                from,
                NIC_TRACK,
                now,
                timing.arrival.saturating_since(now),
                Event::VmmcWrite {
                    region: region.0,
                    bytes: total,
                },
            );
            if owner != from {
                o.edge(
                    EdgeKind::MsgSend,
                    from,
                    NIC_TRACK,
                    now,
                    owner,
                    NIC_TRACK,
                    timing.arrival,
                    region.0,
                );
            }
        }
        Ok(timing)
    }

    /// Batched remote fetch: synchronously reads several discontiguous
    /// segments of `region` from its owner in **one** SAN round trip.
    ///
    /// Returns the segment payloads and one cut-through completion time
    /// per segment (see [`San::fetch_multi`]): the caller may resume as
    /// soon as its demand segment has landed while the rest stream in.
    ///
    /// `segs` is a list of `(offset, len)` pairs; the result vector is in
    /// the same order. Like [`Vmmc::remote_fetch`], a dropped request or
    /// reply costs the requester a timeout and the whole (idempotent)
    /// batch is re-issued with exponential backoff; data is read exactly
    /// once after the final successful round trip.
    ///
    /// # Errors
    ///
    /// Fails if the region is unknown, not imported by `from`, or any
    /// segment is out of bounds.
    pub fn remote_fetch_multi(
        &self,
        from: NodeId,
        region: RegionId,
        segs: &[(u64, u64)],
        now: SimTime,
    ) -> Result<(Vec<Vec<u8>>, Vec<SimTime>), VmmcError> {
        assert!(!segs.is_empty(), "empty batched fetch");
        let mut owner = None;
        let mut all_pieces = Vec::with_capacity(segs.len());
        for (offset, len) in segs {
            let (o, pieces) = self.check_remote(from, region, *offset, *len)?;
            owner = Some(o);
            all_pieces.push(pieces);
        }
        let owner = owner.unwrap();
        let total: u64 = segs.iter().map(|(_, l)| *l).sum();
        let times = if owner == from {
            vec![now; segs.len()]
        } else {
            let mut issue = now;
            if let Some(c) = self.chaos_wire() {
                let (r, timeout) = c.fetch_retries(from.0, owner.0);
                if r > 0 {
                    for i in 0..r {
                        let backoff = timeout << i;
                        if let Some(o) = self.obs_on() {
                            o.span(
                                Layer::Chaos,
                                from,
                                NIC_TRACK,
                                issue,
                                backoff,
                                Event::ChaosRetry {
                                    attempt: (i + 1) as u64,
                                    backoff_ns: backoff,
                                },
                            );
                        }
                        c.note_retry();
                        issue = issue + backoff;
                    }
                    if let Some(o) = self.obs_on() {
                        o.edge(
                            EdgeKind::Recovery,
                            from,
                            NIC_TRACK,
                            now,
                            from,
                            NIC_TRACK,
                            issue,
                            region.0,
                        );
                    }
                }
            }
            let lens: Vec<u64> = segs.iter().map(|(_, l)| *l).collect();
            self.san.fetch_multi(from, owner, &lens, issue)
        };
        let mut out = Vec::with_capacity(segs.len());
        for ((_, len), pieces) in segs.iter().zip(all_pieces) {
            let mut data = vec![0u8; *len as usize];
            let mut cursor = 0usize;
            for (frame, in_frame, take) in pieces {
                self.mem
                    .frame_read(frame, in_frame, &mut data[cursor..cursor + take]);
                cursor += take;
            }
            out.push(data);
        }
        let last = *times.last().expect("non-empty batch");
        if let Some(o) = self.obs_on() {
            o.span(
                Layer::Vmmc,
                from,
                NIC_TRACK,
                now,
                last.saturating_since(now),
                Event::VmmcFetch {
                    region: region.0,
                    bytes: total,
                },
            );
            if owner != from {
                o.edge(
                    EdgeKind::MsgFetch,
                    owner,
                    NIC_TRACK,
                    now,
                    from,
                    NIC_TRACK,
                    last,
                    region.0,
                );
            }
        }
        Ok((out, times))
    }

    /// Notification: a small message that dispatches a handler on the
    /// remote host. Returns the SAN timing (`arrival` = handler start).
    pub fn notify(&self, from: NodeId, to: NodeId, now: SimTime) -> SendTiming {
        self.ensure_node(from);
        self.ensure_node(to);
        let timing = self.san.notify(from, to, now);
        if let Some(o) = self.obs_on() {
            o.span(
                Layer::Vmmc,
                from,
                NIC_TRACK,
                now,
                timing.arrival.saturating_since(now),
                Event::VmmcNotify { to: to.0 },
            );
        }
        timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::OsVmConfig;
    use san::SanConfig;

    fn setup() -> (Vmmc, Arc<ClusterMem>) {
        let san = Arc::new(San::new(SanConfig::paper()));
        let mem = Arc::new(ClusterMem::new(OsVmConfig::windows_nt()));
        let v = Vmmc::new(VmmcConfig::paper(), san, Arc::clone(&mem));
        for i in 0..4 {
            v.ensure_node(NodeId(i));
        }
        (v, mem)
    }

    fn frames(mem: &ClusterMem, node: NodeId, n: usize) -> Vec<FrameId> {
        (0..n).map(|_| mem.alloc_frame(node).unwrap()).collect()
    }

    #[test]
    fn export_pins_and_counts() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(0), 2);
        let r = v.export_region(NodeId(0), fs.clone()).unwrap();
        assert!(mem.is_pinned(fs[0]));
        let s = v.nic_stats(NodeId(0));
        assert_eq!(s.regions, 1);
        assert_eq!(s.registered_bytes, 2 * PAGE_SIZE);
        assert_eq!(v.region_pages(r).unwrap(), 2);
    }

    #[test]
    fn region_limit_enforced() {
        let san = Arc::new(San::new(SanConfig::paper()));
        let mem = Arc::new(ClusterMem::new(OsVmConfig::windows_nt()));
        let v = Vmmc::new(
            VmmcConfig {
                max_regions_per_nic: 2,
                ..VmmcConfig::paper()
            },
            san,
            Arc::clone(&mem),
        );
        v.ensure_node(NodeId(0));
        for _ in 0..2 {
            let fs = frames(&mem, NodeId(0), 1);
            v.export_region(NodeId(0), fs).unwrap();
        }
        let fs = frames(&mem, NodeId(0), 1);
        assert!(matches!(
            v.export_region(NodeId(0), fs),
            Err(VmmcError::RegionLimit { .. })
        ));
    }

    #[test]
    fn registered_bytes_limit_enforced() {
        let san = Arc::new(San::new(SanConfig::paper()));
        let mem = Arc::new(ClusterMem::new(OsVmConfig::windows_nt()));
        let v = Vmmc::new(
            VmmcConfig {
                max_registered_bytes: 3 * PAGE_SIZE,
                ..VmmcConfig::paper()
            },
            san,
            Arc::clone(&mem),
        );
        v.ensure_node(NodeId(0));
        let fs = frames(&mem, NodeId(0), 4);
        assert!(matches!(
            v.export_region(NodeId(0), fs),
            Err(VmmcError::RegisteredBytesLimit { .. })
        ));
    }

    #[test]
    fn pinned_limit_enforced() {
        let san = Arc::new(San::new(SanConfig::paper()));
        let mem = Arc::new(ClusterMem::new(OsVmConfig::windows_nt()));
        let v = Vmmc::new(
            VmmcConfig {
                max_pinned_bytes: 2 * PAGE_SIZE,
                ..VmmcConfig::paper()
            },
            san,
            Arc::clone(&mem),
        );
        v.ensure_node(NodeId(0));
        let fs = frames(&mem, NodeId(0), 3);
        assert!(matches!(
            v.export_region(NodeId(0), fs),
            Err(VmmcError::PinnedBytesLimit { .. })
        ));
    }

    #[test]
    fn remote_write_moves_bytes() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs.clone()).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let t = v
            .remote_write(NodeId(0), r, 100, &[9, 8, 7], SimTime::ZERO)
            .unwrap();
        assert!(t.arrival.as_nanos() >= 7_800);
        let mut buf = [0u8; 3];
        mem.frame_read(fs[0], 100, &mut buf);
        assert_eq!(buf, [9, 8, 7]);
    }

    #[test]
    fn remote_fetch_reads_bytes() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 2);
        mem.frame_write(fs[1], 0, &[1, 2, 3, 4]);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        // Fetch across the frame boundary.
        let (data, done) = v
            .remote_fetch(NodeId(0), r, PAGE_SIZE - 2, 6, SimTime::ZERO)
            .unwrap();
        assert_eq!(&data[2..], &[1, 2, 3, 4]);
        assert!(done.as_nanos() >= 22_000);
    }

    #[test]
    fn unimported_access_rejected() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs).unwrap();
        assert!(matches!(
            v.remote_write(NodeId(0), r, 0, &[1], SimTime::ZERO),
            Err(VmmcError::NotImported { .. })
        ));
    }

    #[test]
    fn owner_access_is_local_and_free() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs).unwrap();
        let t = v
            .remote_write(NodeId(1), r, 0, &[5], SimTime::from_micros(3))
            .unwrap();
        assert_eq!(t.arrival, SimTime::from_micros(3));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        assert!(matches!(
            v.remote_fetch(NodeId(0), r, PAGE_SIZE - 1, 2, SimTime::ZERO),
            Err(VmmcError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn extend_region_keeps_single_registration() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(0), 1);
        let r = v.export_region(NodeId(0), fs).unwrap();
        let more = frames(&mem, NodeId(0), 3);
        v.extend_region(r, more).unwrap();
        let s = v.nic_stats(NodeId(0));
        assert_eq!(s.regions, 1, "double mapping: still one region");
        assert_eq!(s.registered_bytes, 4 * PAGE_SIZE);
        assert_eq!(v.region_pages(r).unwrap(), 4);
    }

    #[test]
    fn import_is_idempotent() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        assert_eq!(v.nic_stats(NodeId(0)).regions, 1);
    }

    #[test]
    fn notify_timing() {
        let (v, _) = setup();
        let t = v.notify(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(t.arrival.as_nanos(), 18_000);
    }

    #[test]
    fn unimport_frees_nic_region_slot() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        assert_eq!(v.nic_stats(NodeId(0)).regions, 1);
        v.unimport_region(NodeId(0), r).unwrap();
        assert_eq!(v.nic_stats(NodeId(0)).regions, 0);
        // After unimport, remote access is rejected again...
        assert!(matches!(
            v.remote_write(NodeId(0), r, 0, &[1], SimTime::ZERO),
            Err(VmmcError::NotImported { .. })
        ));
        // ...and a second unimport is an error, not a double decrement.
        assert!(matches!(
            v.unimport_region(NodeId(0), r),
            Err(VmmcError::NotImported { .. })
        ));
    }

    #[test]
    fn batched_write_moves_all_segments_in_one_message() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 2);
        let r = v.export_region(NodeId(1), fs.clone()).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let segs = vec![(8u64, vec![1, 2, 3]), (PAGE_SIZE + 16, vec![9, 9])];
        let t_batch = v
            .remote_write_multi(NodeId(0), r, &segs, SimTime::ZERO)
            .unwrap();
        let mut buf = [0u8; 3];
        mem.frame_read(fs[0], 8, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        let mut buf2 = [0u8; 2];
        mem.frame_read(fs[1], 16, &mut buf2);
        assert_eq!(buf2, [9, 9]);
        assert_eq!(v.san().traffic(NodeId(0)).messages_out, 1);
        // Cheaper than two per-page writes each awaiting its own fence
        // (the unbatched release pattern: one arrival wait per page).
        let (v2, mem2) = setup();
        let fs2 = frames(&mem2, NodeId(1), 2);
        let r2 = v2.export_region(NodeId(1), fs2).unwrap();
        v2.import_region(NodeId(0), r2).unwrap();
        let a = v2.remote_write(NodeId(0), r2, 8, &[1, 2, 3], SimTime::ZERO).unwrap();
        let b = v2
            .remote_write(NodeId(0), r2, PAGE_SIZE + 16, &[9, 9], a.arrival)
            .unwrap();
        assert!(t_batch.arrival < b.arrival);
    }

    #[test]
    fn batched_fetch_returns_segments_in_order() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 2);
        mem.frame_write(fs[0], 0, &[5, 6]);
        mem.frame_write(fs[1], 4, &[7, 8, 9]);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let (data, times) = v
            .remote_fetch_multi(NodeId(0), r, &[(0, 2), (PAGE_SIZE + 4, 3)], SimTime::ZERO)
            .unwrap();
        assert_eq!(data, vec![vec![5, 6], vec![7, 8, 9]]);
        // Cut-through: the first segment lands first, the last segment
        // still pays the full round trip.
        assert!(times[0] <= times[1]);
        assert!(times[1].as_nanos() >= 22_000);
        // One batched round trip beats two back-to-back fetches.
        assert!(times[1].as_nanos() < 2 * 22_000);
    }

    #[test]
    fn batched_fetch_retries_whole_batch_without_corruption() {
        let (v, mem) = setup();
        v.set_chaos(chaos::ChaosEngine::new(
            3,
            chaos::FaultPlan::new().wire(chaos::WireFaults {
                drop_p: 1.0,
                max_retransmits: 2,
                retransmit_timeout_ns: 10_000,
                ..chaos::WireFaults::default()
            }),
        ));
        let fs = frames(&mem, NodeId(1), 2);
        mem.frame_write(fs[0], 0, &[42]);
        mem.frame_write(fs[1], 0, &[43]);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let (data, times) = v
            .remote_fetch_multi(NodeId(0), r, &[(0, 1), (PAGE_SIZE, 1)], SimTime::ZERO)
            .unwrap();
        assert_eq!(data, vec![vec![42], vec![43]]);
        let done = *times.last().unwrap();
        assert!(done.as_nanos() >= 30_000 + 22_000, "got {}", done.as_nanos());
    }

    #[test]
    fn batched_write_out_of_bounds_writes_nothing() {
        let (v, mem) = setup();
        let fs = frames(&mem, NodeId(1), 1);
        let r = v.export_region(NodeId(1), fs.clone()).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let segs = vec![(0u64, vec![1]), (PAGE_SIZE, vec![2])];
        assert!(matches!(
            v.remote_write_multi(NodeId(0), r, &segs, SimTime::ZERO),
            Err(VmmcError::OutOfBounds { .. })
        ));
        let mut buf = [9u8; 1];
        mem.frame_read(fs[0], 0, &mut buf);
        assert_eq!(buf, [0], "failed batch must not partially apply");
    }

    #[test]
    fn chaos_resource_pressure_is_transient() {
        let (v, mem) = setup();
        v.set_chaos(chaos::ChaosEngine::new(
            11,
            chaos::FaultPlan::new().resources(chaos::ResourceFaults {
                export_fail_p: 1.0,
                max_consecutive: 2,
                ..chaos::ResourceFaults::default()
            }),
        ));
        let fs = frames(&mem, NodeId(0), 1);
        // Two injected failures, then the bounded injector lets the
        // operation through: a 3-attempt retry loop always succeeds.
        let mut attempts = 0;
        let mut fs = Some(fs);
        let id = loop {
            attempts += 1;
            match v.export_region(NodeId(0), fs.take().unwrap()) {
                Ok(id) => break id,
                Err(VmmcError::RegionLimit { .. }) if attempts <= 3 => {
                    fs = Some(frames(&mem, NodeId(0), 1));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(attempts, 3);
        assert_eq!(v.region_pages(id).unwrap(), 1);
    }

    #[test]
    fn chaos_fetch_retries_delay_but_return_correct_data() {
        let (v, mem) = setup();
        v.set_chaos(chaos::ChaosEngine::new(
            3,
            chaos::FaultPlan::new().wire(chaos::WireFaults {
                drop_p: 1.0,
                max_retransmits: 2,
                retransmit_timeout_ns: 10_000,
                ..chaos::WireFaults::default()
            }),
        ));
        let fs = frames(&mem, NodeId(1), 1);
        mem.frame_write(fs[0], 0, &[42, 43]);
        let r = v.export_region(NodeId(1), fs).unwrap();
        v.import_region(NodeId(0), r).unwrap();
        let (data, done) = v.remote_fetch(NodeId(0), r, 0, 2, SimTime::ZERO).unwrap();
        assert_eq!(data, vec![42, 43], "retried fetch must not corrupt data");
        // Two forced timeouts with exponential backoff (10us + 20us) plus
        // the nominal round trip.
        assert!(done.as_nanos() >= 30_000 + 22_000, "got {}", done.as_nanos());
    }
}
