//! Deterministic request-traffic generation for the CableS KV service.
//!
//! A [`TrafficConfig`] fully determines a [`Schedule`]: the same config
//! (including its seed) replays the exact same request stream,
//! bit-identically — [`schedule`] is a pure function with no hidden
//! state, clocks, or platform dependence, so a benchmark cell can be
//! reproduced from its config alone. The schedule carries *what* each
//! request is (op, key, scan length) and, for the open-loop driver,
//! *when* it arrives; the closed-loop driver paces itself by response +
//! think time, so its schedule pins only the per-client op/key sequence.
//!
//! Three arrival patterns are modeled:
//!
//! * **uniform** — jittered-constant inter-arrival times around a target
//!   rate (a deterministic stand-in for a Poisson process),
//! * **bursty** — an on/off phase machine with a rate per phase (the
//!   classic packet-train shape; `off` at rate 0 produces true silence),
//! * **hot-key zipfian** — arrival times stay uniform, but keys are
//!   drawn rank-skewed (Gray et al.'s bounded zipfian, the YCSB
//!   sampler) and scattered over the keyspace with a coprime stride so
//!   popularity rank and key adjacency are decoupled.
//!
//! All randomness flows from [`sim::DetRng`] (splitmix64) streams split
//! per concern (arrivals / ops / keys), so adding a request never shifts
//! an unrelated draw.

use sim::DetRng;

/// Operations the generated requests perform, mirroring the service's
/// API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read.
    Get,
    /// Point write.
    Put,
    /// Point delete.
    Delete,
    /// Ordered range read of `scan_len` consecutive keys.
    Scan,
}

impl OpKind {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Delete => "delete",
            OpKind::Scan => "scan",
        }
    }

    const fn code(self) -> u8 {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::Delete => 2,
            OpKind::Scan => 3,
        }
    }
}

/// Relative operation weights (need not sum to anything particular; all
/// zero is rejected by [`schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of point reads.
    pub get: u32,
    /// Weight of point writes.
    pub put: u32,
    /// Weight of deletes.
    pub delete: u32,
    /// Weight of scans.
    pub scan: u32,
    /// Keys per scan (applies to every scan request).
    pub scan_len: u32,
}

impl OpMix {
    /// A read-mostly mix in YCSB-B's spirit: 75% get, 20% put, 3%
    /// delete, 2% scan of 8 keys.
    pub const fn read_mostly() -> OpMix {
        OpMix { get: 75, put: 20, delete: 3, scan: 2, scan_len: 8 }
    }

    /// An update-heavy mix: 50% get, 50% put.
    pub const fn update_heavy() -> OpMix {
        OpMix { get: 50, put: 50, delete: 0, scan: 0, scan_len: 0 }
    }
}

/// When requests arrive (open loop only; the closed-loop driver paces by
/// completion + think time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Jittered-constant inter-arrival around `1e9 / rate_rps` ns: each
    /// gap is drawn uniformly from `[mean/2, 3*mean/2)`, preserving the
    /// mean rate while avoiding a metronome.
    Uniform {
        /// Target arrival rate, requests per simulated second.
        rate_rps: u64,
    },
    /// An on/off phase machine: `on_ns` of arrivals at `on_rate_rps`,
    /// then `off_ns` at `off_rate_rps` (0 = silence), repeating. Gaps
    /// are jittered like [`Arrival::Uniform`] within each phase.
    Bursty {
        /// Burst phase length, simulated ns.
        on_ns: u64,
        /// Quiet phase length, simulated ns.
        off_ns: u64,
        /// Arrival rate inside a burst, requests per simulated second.
        on_rate_rps: u64,
        /// Arrival rate between bursts (0 for true silence).
        off_rate_rps: u64,
    },
}

/// How keys are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Bounded zipfian over popularity ranks (Gray et al. / YCSB) with
    /// skew `theta` in `[0, 1)`; rank 0 is the hottest. Ranks are
    /// scattered over the keyspace with a stride coprime to `keys`, so
    /// hot keys are spread across shards and pages rather than
    /// clustered at the bottom of the space.
    Zipfian {
        /// Skew parameter; YCSB's default is 0.99, 0 degenerates to
        /// uniform.
        theta: f64,
    },
}

/// Who decides when the next request is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Arrivals follow the [`Arrival`] pattern regardless of service
    /// progress (load is exogenous; queues can grow).
    OpenLoop,
    /// `clients` concurrent clients each issue, wait for the response,
    /// think for `think_ns`, and repeat (load adapts to service speed).
    ClosedLoop {
        /// Concurrent closed-loop clients.
        clients: u32,
        /// Simulated think time between a response and the next issue.
        think_ns: u64,
    },
}

/// The full, replayable description of one traffic run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Root seed; all three RNG streams derive from it.
    pub seed: u64,
    /// Total requests to generate.
    pub requests: u32,
    /// Keyspace size (keys are `0..keys`).
    pub keys: u64,
    /// Words per value (the service writes/checks this many words).
    pub val_words: u32,
    /// Arrival pattern (meaningful under [`Driver::OpenLoop`]).
    pub arrival: Arrival,
    /// Key distribution.
    pub keydist: KeyDist,
    /// Operation mix.
    pub mix: OpMix,
    /// Open or closed loop.
    pub driver: Driver,
}

impl TrafficConfig {
    /// The `uniform` preset: open loop, uniform arrivals and keys.
    pub fn uniform(seed: u64, requests: u32, keys: u64, rate_rps: u64) -> TrafficConfig {
        TrafficConfig {
            seed,
            requests,
            keys,
            val_words: 8,
            arrival: Arrival::Uniform { rate_rps },
            keydist: KeyDist::Uniform,
            mix: OpMix::read_mostly(),
            driver: Driver::OpenLoop,
        }
    }

    /// The `bursty` preset: open loop, 4:1 on/off phases with a 4x rate
    /// swing, uniform keys.
    pub fn bursty(seed: u64, requests: u32, keys: u64, rate_rps: u64) -> TrafficConfig {
        TrafficConfig {
            seed,
            requests,
            keys,
            val_words: 8,
            arrival: Arrival::Bursty {
                on_ns: 2_000_000,
                off_ns: 500_000,
                on_rate_rps: rate_rps * 2,
                off_rate_rps: rate_rps / 2,
            },
            keydist: KeyDist::Uniform,
            mix: OpMix::read_mostly(),
            driver: Driver::OpenLoop,
        }
    }

    /// The `zipfian` preset: open loop, uniform arrivals, hot-key
    /// zipfian keys at YCSB's default skew.
    pub fn zipfian(seed: u64, requests: u32, keys: u64, rate_rps: u64) -> TrafficConfig {
        TrafficConfig {
            seed,
            requests,
            keys,
            val_words: 8,
            arrival: Arrival::Uniform { rate_rps },
            keydist: KeyDist::Zipfian { theta: 0.99 },
            mix: OpMix::read_mostly(),
            driver: Driver::OpenLoop,
        }
    }

    /// Switches any preset to the closed-loop driver.
    pub fn closed_loop(mut self, clients: u32, think_ns: u64) -> TrafficConfig {
        self.driver = Driver::ClosedLoop { clients, think_ns };
        self
    }

    /// The pattern's display name (the benchmark's cell label).
    pub fn pattern_name(&self) -> &'static str {
        match (self.arrival, self.keydist) {
            (_, KeyDist::Zipfian { .. }) => "zipfian",
            (Arrival::Bursty { .. }, _) => "bursty",
            (Arrival::Uniform { .. }, _) => "uniform",
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense id in generation order (also the response-slot index).
    pub id: u32,
    /// Scheduled arrival, simulated ns (0 under the closed-loop driver,
    /// which paces itself).
    pub arrival_ns: u64,
    /// Issuing client (always 0 under the open-loop driver; round-robin
    /// over `clients` under the closed loop).
    pub client: u32,
    /// What to do.
    pub op: OpKind,
    /// The key (for scans, the first key of the range).
    pub key: u64,
    /// Range length for scans, 0 otherwise.
    pub scan_len: u32,
}

/// A generated request stream plus the config that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The generating config (replay = call [`schedule`] on it again).
    pub config: TrafficConfig,
    /// Requests in arrival order (open loop: nondecreasing
    /// `arrival_ns`; closed loop: per-client issue order).
    pub requests: Vec<Request>,
}

impl Schedule {
    /// FNV-1a fingerprint over the canonical byte encoding of every
    /// request. Two schedules are byte-identical iff their fingerprints
    /// match (modulo hash collisions); the determinism proptests and the
    /// bench's replay check both compare this.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.requests {
            eat(r.id as u64);
            eat(r.arrival_ns);
            eat(r.client as u64);
            eat(r.op.code() as u64);
            eat(r.key);
            eat(r.scan_len as u64);
        }
        h
    }

    /// Per-op request counts in [`OpKind`] declaration order
    /// (get/put/delete/scan).
    pub fn op_counts(&self) -> [u64; 4] {
        let mut c = [0u64; 4];
        for r in &self.requests {
            c[r.op.code() as usize] += 1;
        }
        c
    }

    /// Last scheduled arrival (0 for closed loop / empty schedules).
    pub fn horizon_ns(&self) -> u64 {
        self.requests.iter().map(|r| r.arrival_ns).max().unwrap_or(0)
    }
}

/// Bounded zipfian sampler over ranks `0..n` (Gray et al., "Quickly
/// generating billion-record synthetic databases"; the YCSB generator).
/// Rank 0 is the most popular; `P(rank) ∝ 1 / (rank+1)^theta`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    theta: f64,
}

impl Zipf {
    /// Builds a sampler for `n` ranks at skew `theta` (must satisfy
    /// `0 <= theta < 1` and `n > 0`).
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty rank space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        Zipf {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut z = 0.0;
        for i in 1..=n {
            z += 1.0 / (i as f64).powf(theta);
        }
        z
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The theoretical probability of `rank` (for the skew-tolerance
    /// proptest).
    pub fn probability(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }
}

/// Greatest common divisor (for the rank-scatter stride).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The stride that scatters popularity ranks over the keyspace:
/// `key = (rank * stride) % keys`, with `stride` the first candidate
/// near `keys * φ` coprime to `keys`, so the map is a bijection (the
/// skew-tolerance proptest depends on rank→key being 1:1) and
/// consecutive ranks land far apart.
pub fn scatter_stride(keys: u64) -> u64 {
    if keys <= 2 {
        return 1;
    }
    let golden = ((keys as u128 * 2_654_435_769u128) >> 32) as u64; // keys * (φ-1)
    let mut s = golden.clamp(1, keys - 1);
    while gcd(s, keys) != 1 {
        s -= 1;
        if s == 0 {
            return 1;
        }
    }
    s
}

fn jittered_gap(rng: &mut DetRng, rate_rps: u64) -> u64 {
    let mean = 1_000_000_000 / rate_rps.max(1);
    mean / 2 + rng.next_below(mean.max(1))
}

/// Generates the request stream for `cfg`. Pure: identical configs give
/// byte-identical schedules. Panics on degenerate configs (no requests,
/// empty keyspace, all-zero op mix, zero-rate uniform arrivals,
/// zero-client closed loop).
pub fn schedule(cfg: &TrafficConfig) -> Schedule {
    assert!(cfg.requests > 0, "empty schedule");
    assert!(cfg.keys > 0, "empty keyspace");
    let weight = cfg.mix.get + cfg.mix.put + cfg.mix.delete + cfg.mix.scan;
    assert!(weight > 0, "all-zero op mix");

    // Independent streams per concern, split from the root seed: the
    // arrival draw for request i never perturbs its key draw.
    let mut arr_rng = DetRng::new(cfg.seed ^ 0xa11a_7e57_0000_0001);
    let mut op_rng = DetRng::new(cfg.seed ^ 0x0b5e_55ed_0000_0002);
    let mut key_rng = DetRng::new(cfg.seed ^ 0x5eed_f00d_0000_0003);

    let zipf = match cfg.keydist {
        KeyDist::Zipfian { theta } => Some(Zipf::new(cfg.keys, theta)),
        KeyDist::Uniform => None,
    };
    let stride = scatter_stride(cfg.keys);

    let clients = match cfg.driver {
        Driver::ClosedLoop { clients, .. } => {
            assert!(clients > 0, "closed loop with zero clients");
            clients
        }
        Driver::OpenLoop => 1,
    };

    let mut now = 0u64;
    // Bursty phase machine state: time already spent in the current
    // phase, and whether we are in the on phase.
    let mut phase_on = true;
    let mut phase_elapsed = 0u64;

    let mut requests = Vec::with_capacity(cfg.requests as usize);
    for id in 0..cfg.requests {
        let arrival_ns = match (cfg.driver, cfg.arrival) {
            (Driver::ClosedLoop { .. }, _) => 0,
            (Driver::OpenLoop, Arrival::Uniform { rate_rps }) => {
                assert!(rate_rps > 0, "uniform arrivals at rate 0");
                now += jittered_gap(&mut arr_rng, rate_rps);
                now
            }
            (Driver::OpenLoop, Arrival::Bursty { on_ns, off_ns, on_rate_rps, off_rate_rps }) => {
                assert!(on_rate_rps > 0, "bursty on-phase at rate 0");
                assert!(on_ns > 0, "bursty with no on phase");
                loop {
                    let (len, rate) = if phase_on {
                        (on_ns, on_rate_rps)
                    } else {
                        (off_ns, off_rate_rps)
                    };
                    if rate == 0 {
                        // Silent phase: skip it whole.
                        now += len - phase_elapsed;
                        phase_on = !phase_on;
                        phase_elapsed = 0;
                        continue;
                    }
                    let gap = jittered_gap(&mut arr_rng, rate);
                    if phase_elapsed + gap >= len && off_ns > 0 {
                        // The draw crosses the phase boundary: move to
                        // the phase start and redraw at its rate.
                        now += len - phase_elapsed;
                        phase_on = !phase_on;
                        phase_elapsed = 0;
                        continue;
                    }
                    now += gap;
                    phase_elapsed += gap;
                    break;
                }
                now
            }
        };

        let w = op_rng.next_below(weight as u64) as u32;
        let op = if w < cfg.mix.get {
            OpKind::Get
        } else if w < cfg.mix.get + cfg.mix.put {
            OpKind::Put
        } else if w < cfg.mix.get + cfg.mix.put + cfg.mix.delete {
            OpKind::Delete
        } else {
            OpKind::Scan
        };

        let key = match &zipf {
            Some(z) => {
                let rank = z.sample(&mut key_rng);
                ((rank as u128 * stride as u128) % cfg.keys as u128) as u64
            }
            None => key_rng.next_below(cfg.keys),
        };

        requests.push(Request {
            id,
            arrival_ns,
            client: id % clients,
            op,
            key,
            scan_len: if op == OpKind::Scan { cfg.mix.scan_len.max(1) } else { 0 },
        });
    }

    Schedule { config: cfg.clone(), requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_and_closed_share_the_op_key_sequence() {
        let open = schedule(&TrafficConfig::uniform(7, 500, 1 << 12, 1_000_000));
        let closed =
            schedule(&TrafficConfig::uniform(7, 500, 1 << 12, 1_000_000).closed_loop(8, 1_000));
        for (a, b) in open.requests.iter().zip(&closed.requests) {
            assert_eq!((a.op, a.key, a.scan_len), (b.op, b.key, b.scan_len));
        }
        assert!(closed.requests.iter().all(|r| r.arrival_ns == 0));
        assert_eq!(closed.requests[9].client, 1);
    }

    #[test]
    fn uniform_arrivals_are_monotone_and_near_rate() {
        let s = schedule(&TrafficConfig::uniform(3, 2_000, 256, 1_000_000));
        let mut prev = 0;
        for r in &s.requests {
            assert!(r.arrival_ns > prev, "arrivals must strictly advance");
            prev = r.arrival_ns;
        }
        // 2000 requests at 1M rps ≈ 2ms horizon; jitter keeps the mean.
        let horizon = s.horizon_ns() as f64;
        assert!((1.6e6..2.4e6).contains(&horizon), "horizon {horizon}");
    }

    #[test]
    fn silent_off_phase_has_no_arrivals() {
        let cfg = TrafficConfig {
            arrival: Arrival::Bursty {
                on_ns: 1_000_000,
                off_ns: 1_000_000,
                on_rate_rps: 1_000_000,
                off_rate_rps: 0,
            },
            ..TrafficConfig::bursty(11, 3_000, 256, 1_000_000)
        };
        let s = schedule(&cfg);
        for r in &s.requests {
            let in_phase = r.arrival_ns % 2_000_000;
            assert!(in_phase <= 1_000_000, "arrival {} in silent phase", r.arrival_ns);
        }
    }

    #[test]
    fn scatter_stride_is_coprime() {
        for keys in [2u64, 3, 64, 100, 4096, 10_000, 1 << 20] {
            let s = scatter_stride(keys);
            assert!(s >= 1 && s < keys.max(2));
            assert_eq!(gcd(s, keys), 1, "keys {keys} stride {s}");
        }
    }

    #[test]
    fn zipf_rank0_dominates() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = DetRng::new(42);
        let mut hits = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        let p = hits as f64 / n as f64;
        let want = z.probability(0);
        assert!((p - want).abs() / want < 0.15, "p {p} vs theory {want}");
    }

    #[test]
    fn fingerprint_changes_with_seed() {
        let a = schedule(&TrafficConfig::zipfian(1, 200, 1024, 500_000));
        let b = schedule(&TrafficConfig::zipfian(2, 200, 1024, 500_000));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
