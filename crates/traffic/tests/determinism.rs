//! Property tests for the traffic generator: bit-identical replay from
//! a `TrafficConfig` across both drivers and all three patterns, and
//! zipfian hot-key frequencies that track the configured skew.

use proptest::prelude::*;

use cables_traffic::{
    schedule, scatter_stride, Arrival, Driver, KeyDist, OpMix, TrafficConfig, Zipf,
};
use sim::DetRng;

fn patterns(seed: u64, requests: u32, keys: u64, rate: u64) -> Vec<TrafficConfig> {
    vec![
        TrafficConfig::uniform(seed, requests, keys, rate),
        TrafficConfig::bursty(seed, requests, keys, rate),
        TrafficConfig::zipfian(seed, requests, keys, rate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same seed + config replays byte-identically: every request
    /// field equal, for every pattern, under both drivers.
    #[test]
    fn same_config_replays_bit_identically(
        seed in any::<u64>(),
        requests in 1u32..400,
        keys in 2u64..5000,
        rate in 1u64..2_000_000,
        clients in 1u32..16,
        think in 0u64..100_000,
    ) {
        for base in patterns(seed, requests, keys, rate.max(1)) {
            for cfg in [base.clone(), base.closed_loop(clients, think)] {
                let a = schedule(&cfg);
                let b = schedule(&cfg);
                prop_assert_eq!(&a.requests, &b.requests);
                prop_assert_eq!(a.fingerprint(), b.fingerprint());
            }
        }
    }

    /// Different seeds diverge (no hidden seed-independent state): with
    /// a few hundred requests the chance of colliding op+key+arrival
    /// streams is negligible.
    #[test]
    fn different_seeds_diverge(seed in any::<u64>()) {
        for cfg in patterns(seed, 300, 4096, 1_000_000) {
            let mut other = cfg.clone();
            other.seed = cfg.seed.wrapping_add(1);
            prop_assert_ne!(schedule(&cfg).fingerprint(), schedule(&other).fingerprint());
        }
    }

    /// Open and closed loop draw the same op/key stream: the driver
    /// changes pacing, never the workload content.
    #[test]
    fn driver_does_not_change_the_workload(
        seed in any::<u64>(),
        requests in 1u32..300,
        keys in 2u64..4096,
    ) {
        for cfg in patterns(seed, requests, keys, 500_000) {
            let open = schedule(&cfg);
            let closed = schedule(&cfg.closed_loop(4, 1_000));
            for (a, b) in open.requests.iter().zip(&closed.requests) {
                prop_assert_eq!(a.op, b.op);
                prop_assert_eq!(a.key, b.key);
                prop_assert_eq!(a.scan_len, b.scan_len);
            }
        }
    }

    /// The zipfian sampler's empirical top-rank frequencies match the
    /// configured skew's theory within tolerance, and the rank→key
    /// scatter preserves them exactly (it is a bijection).
    #[test]
    fn zipf_empirical_matches_theory(
        seed in any::<u64>(),
        theta_pct in 50u32..100,
    ) {
        let theta = theta_pct as f64 / 100.0;
        let n = 1000u64;
        let samples = 40_000u32;
        let z = Zipf::new(n, theta);
        let mut rng = DetRng::new(seed);
        let mut rank_hits = vec![0u32; n as usize];
        for _ in 0..samples {
            rank_hits[z.sample(&mut rng) as usize] += 1;
        }
        // The three hottest ranks carry enough mass for a tight check.
        for rank in 0..3u64 {
            let p = rank_hits[rank as usize] as f64 / samples as f64;
            let want = z.probability(rank);
            prop_assert!(
                (p - want).abs() / want < 0.25,
                "rank {} empirical {:.4} vs theory {:.4} (theta {})",
                rank, p, want, theta
            );
        }
        // And through the generator end-to-end: the hottest *key* is
        // rank 0's scattered image at the same frequency.
        let cfg = TrafficConfig {
            seed,
            requests: samples,
            keys: n,
            val_words: 1,
            arrival: Arrival::Uniform { rate_rps: 1_000_000 },
            keydist: KeyDist::Zipfian { theta },
            mix: OpMix { get: 1, put: 0, delete: 0, scan: 0, scan_len: 0 },
            driver: Driver::OpenLoop,
        };
        let s = schedule(&cfg);
        // Rank r scatters to key (r * stride) % n: rank 0 is key 0,
        // rank 1 is the stride itself.
        for (rank, hot_key) in [(0u64, 0u64), (1, scatter_stride(n) % n)] {
            let hot = s.requests.iter().filter(|r| r.key == hot_key).count() as f64;
            let p = hot / samples as f64;
            let want = z.probability(rank);
            prop_assert!(
                (p - want).abs() / want < 0.25,
                "rank {} key {} empirical {:.4} vs theory {:.4}", rank, hot_key, p, want
            );
        }
    }
}
