//! The home-migration policy extension in action, with protocol tracing.
//!
//! The paper provides the page-migration *mechanisms* but leaves the
//! policy open (§2.1.3). This example runs a producer-owned segment
//! workload twice — policy off (the paper's system) and on — and prints
//! the diff traffic plus the traced migration event.
//!
//! Run with: `cargo run --release --example migration_policy`

use std::sync::Arc;

use svm::{Cluster, ClusterConfig, SvmConfig, SvmSystem, TraceEvent};

fn run(threshold: Option<u32>) -> (u64, u64, u64, Vec<String>) {
    let cluster = Cluster::build(ClusterConfig::small(2, 1));
    let mut cfg = SvmConfig::cables();
    cfg.migration_threshold = threshold;
    let sys = SvmSystem::new(Arc::clone(&cluster), cfg);
    sys.set_tracing(true);
    let s = Arc::clone(&sys);
    let end = cluster
        .engine
        .clone()
        .run(cluster.nodes()[0], move |sim| {
            let seg = s.g_malloc(sim, 64 << 10);
            // The master first-touches the segment: it becomes home.
            s.write::<u64>(sim, seg, 0);
            // ... but node 1 is the segment's real owner from now on.
            let s2 = Arc::clone(&s);
            let producer = s.create(sim, move |ws| {
                for round in 0..100u64 {
                    s2.lock(ws, 1);
                    for i in 0..128u64 {
                        s2.write::<u64>(ws, seg + i * 8, round * 1000 + i);
                    }
                    s2.unlock(ws, 1);
                }
            });
            sim.wait_exit(producer);
            s.lock(sim, 1);
            assert_eq!(s.read::<u64>(sim, seg + 8), 99_001);
            s.unlock(sim, 1);
        })
        .expect("run");
    let st = sys.total_stats();
    let migrations: Vec<String> = sys
        .take_trace()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Migrate { .. }))
        .map(|r| format!("  t={} {}", r.at, r.event))
        .collect();
    (end.as_nanos(), st.diffs_sent, st.diff_bytes, migrations)
}

fn main() {
    println!("producer-owned segment, homed on the wrong node (100 locked rounds)\n");
    for (label, threshold) in [("policy off (paper)", None), ("migrate after 3 sole-writer releases", Some(3))] {
        let (ns, diffs, bytes, migrations) = run(threshold);
        println!("{label}:");
        println!(
            "  total {:.2} ms, remote diffs {diffs}, diff bytes {bytes}",
            ns as f64 / 1e6
        );
        if migrations.is_empty() {
            println!("  (no migrations)");
        } else {
            for m in &migrations {
                println!("{m}");
            }
        }
        println!();
    }
    println!("the policy moves the segment to its sole writer, eliminating the");
    println!("per-release diff traffic the paper's static homes would keep paying.");
}
