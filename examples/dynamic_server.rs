//! A dynamic, commercially-shaped workload — the class of application the
//! paper's introduction motivates: requests arrive over time, worker
//! threads are created and destroyed on the fly, shared session state is
//! allocated and freed mid-execution, and the cluster grows as load rises.
//!
//! M4-style systems cannot express this (all memory at init, all processes
//! at startup); CableS can.
//!
//! Run with: `cargo run --release --example dynamic_server`

use std::sync::Arc;

use cables::{CablesConfig, CablesRt};
use sim::DetRng;
use svm::{Cluster, ClusterConfig};

fn main() {
    let cluster = Cluster::build(ClusterConfig::small(6, 2));
    let rt = CablesRt::new(Arc::clone(&cluster), CablesConfig::paper());
    let rt2 = Arc::clone(&rt);

    let end = rt
        .run(move |pth| {
            let m = pth.rt().mutex_new();
            // Shared "request log": completed-request counter + revenue.
            let stats = pth.malloc(16);
            pth.write::<u64>(stats, 0);
            pth.write::<u64>(stats + 8, 0);

            let mut rng = DetRng::new(2026);
            let mut live = Vec::new();
            let batches = 5;
            for batch in 0..batches {
                let burst = 2 + rng.next_below(4); // 2..=5 requests
                println!(
                    "t={} batch {batch}: {burst} requests arrive",
                    pth.sim.now()
                );
                for _ in 0..burst {
                    let work = 200_000 + rng.next_below(800_000);
                    let item_value = 1 + rng.next_below(100);
                    live.push(pth.create(move |p| {
                        // Each request allocates session state dynamically,
                        // uses it, and frees it — global_malloc/global_free
                        // mid-execution, the paper's headline capability.
                        let session = p.malloc(256);
                        p.write::<u64>(session, item_value);
                        p.compute(work);
                        let v = p.read::<u64>(session);
                        p.mutex_lock(m);
                        let done = p.read::<u64>(stats);
                        let revenue = p.read::<u64>(stats + 8);
                        p.write::<u64>(stats, done + 1);
                        p.write::<u64>(stats + 8, revenue + v);
                        p.mutex_unlock(m);
                        p.free(session);
                        0
                    }));
                }
                // Think time between bursts.
                pth.compute(2_000_000);
                // Drain roughly half the live requests each batch.
                let keep = live.len() / 2;
                for t in live.drain(keep..) {
                    pth.join(t);
                }
            }
            for t in live {
                pth.join(t);
            }
            pth.mutex_lock(m);
            let done = pth.read::<u64>(stats);
            let revenue = pth.read::<u64>(stats + 8);
            pth.mutex_unlock(m);
            println!("served {done} requests, total value {revenue}");
            assert!(done > 0);
            0
        })
        .expect("simulation");

    let s = rt2.stats();
    println!(
        "virtual time {end}: {} threads ({} remote), {} nodes attached, {} mallocs / {} frees",
        s.local_creates + s.remote_creates,
        s.remote_creates,
        s.nodes_attached,
        s.mallocs,
        s.frees
    );
    assert_eq!(s.mallocs - 1, s.frees, "every session freed");
}
