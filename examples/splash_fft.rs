//! SPLASH-2 FFT on both systems: the paper's Fig. 5(a) in miniature.
//!
//! Runs the same M4 program on the base (GeNIMA) system and on CableS at
//! several processor counts and prints execution times, protocol traffic
//! and page placement quality.
//!
//! Run with: `cargo run --release --example splash_fft`

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use apps::splash::fft::{fft, FftParams};
use apps::{M4Mode, M4System};
use svm::{Cluster, ClusterConfig};

fn main() {
    let m = 10; // 2^10 complex points
    println!("SPLASH-2 FFT, n = 2^{m} complex points (scaled down from the paper's 2^22)");
    println!(
        "{:<8} {:>6} {:>14} {:>10} {:>10} {:>12}",
        "system", "procs", "exec time", "fetches", "diffs", "misplaced %"
    );
    for procs in [1usize, 4, 8] {
        for mode in [M4Mode::Base, M4Mode::Cables] {
            let nodes = procs.div_ceil(2).max(1);
            let cluster = Cluster::build(ClusterConfig::small(nodes, 2));
            let sys = match mode {
                M4Mode::Base => M4System::base(cluster),
                M4Mode::Cables => M4System::cables(cluster),
            };
            let sys2 = Arc::clone(&sys);
            let params = FftParams {
                m,
                nprocs: procs,
                verify: true,
            };
            let err = Arc::new(StdMutex::new(0.0f64));
            let err2 = Arc::clone(&err);
            let end = sys
                .run(move |ctx| {
                    let r = fft(ctx, &params);
                    *err2.lock().unwrap() = r.max_error.unwrap_or(f64::NAN);
                })
                .expect("run");
            assert!(*err.lock().unwrap() < 1e-9, "FFT verification failed");
            let stats = sys2.svm().total_stats();
            let placement = sys2.svm().placement_report();
            println!(
                "{:<8} {:>6} {:>14} {:>10} {:>10} {:>11.1}%",
                format!("{mode:?}"),
                procs,
                format!("{end}"),
                stats.remote_fetches,
                stats.diffs_sent,
                placement.misplaced_pct()
            );
        }
    }
    println!("\n(verification: ifft(fft(x)) == x to 1e-9 on every run)");
}
