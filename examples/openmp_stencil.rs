//! An OpenMP program on the cluster, OdinMP-style: a heat-diffusion
//! stencil written with parallel regions, static worksharing, reductions
//! and singles — all lowered onto CableS pthreads (paper §3.3).
//!
//! Run with: `cargo run --release --example openmp_stencil`

use std::sync::Arc;

use cables::{CablesConfig, CablesRt};
use omp::Omp;
use svm::{Cluster, ClusterConfig};

fn main() {
    let n = 64usize;
    let steps = 10;
    let threads = 4;

    let cluster = Cluster::build(ClusterConfig::small(2, 2));
    let rt = CablesRt::new(Arc::clone(&cluster), CablesConfig::paper());
    let rt2 = Arc::clone(&rt);

    let end = rt
        .run(move |pth| {
            let omp = Omp::new(Arc::clone(&rt2), threads);
            let grid = pth.malloc((n * n * 8) as u64);
            let next = pth.malloc((n * n * 8) as u64);
            let heat = pth.malloc(8);
            let at = move |g: memsim::GAddr, i: usize, j: usize| g + ((i * n + j) * 8) as u64;

            // Master initializes: a hot square in the middle.
            for i in 0..n {
                for j in 0..n {
                    let hot = (n / 4..3 * n / 4).contains(&i) && (n / 4..3 * n / 4).contains(&j);
                    pth.write::<f64>(at(grid, i, j), if hot { 100.0 } else { 0.0 });
                }
            }

            let mut src = grid;
            let mut dst = next;
            for step in 0..steps {
                let (s, d) = (src, dst);
                omp.parallel(pth, move |c| {
                    // #pragma omp for
                    c.for_static(n - 2, |r| {
                        let i = r + 1;
                        for j in 1..n - 1 {
                            let v = 0.25
                                * (c.pth().read::<f64>(at(s, i - 1, j))
                                    + c.pth().read::<f64>(at(s, i + 1, j))
                                    + c.pth().read::<f64>(at(s, i, j - 1))
                                    + c.pth().read::<f64>(at(s, i, j + 1)));
                            c.pth().write::<f64>(at(d, i, j), v);
                        }
                        c.pth().compute(4 * (n as u64) * 20);
                    });
                    c.barrier();
                    // #pragma omp single: sample total heat.
                    c.single(|| {
                        let mut total = 0.0;
                        for i in 1..n - 1 {
                            total += c.pth().read::<f64>(at(d, i, n / 2));
                        }
                        c.pth().write::<f64>(heat, total);
                    });
                });
                let centre_heat = pth.read::<f64>(heat);
                if step % 3 == 0 {
                    println!("step {step}: centre-column heat {centre_heat:.2}");
                }
                std::mem::swap(&mut src, &mut dst);
            }

            // Reduction: total heat in the final grid.
            let total = pth.malloc(8);
            pth.write::<f64>(total, 0.0);
            let s = src;
            omp.parallel(pth, move |c| {
                let mut local = 0.0;
                c.for_static(n, |i| {
                    for j in 0..n {
                        local += c.pth().read::<f64>(at(s, i, j));
                    }
                });
                c.reduce_sum_f64(total, local);
            });
            let t = pth.read::<f64>(total);
            println!("total heat after {steps} steps: {t:.1}");
            assert!(t > 0.0);
            omp.shutdown(pth);
            0
        })
        .expect("simulation");
    println!("virtual time: {end}");
}
