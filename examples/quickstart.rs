//! Quickstart: a CableS "hello cluster" — dynamic threads, dynamic global
//! memory, mutexes, condition variables and the barrier extension, on a
//! simulated 4-node (8-processor) cluster.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use cables::{CablesConfig, CablesRt};
use svm::{Cluster, ClusterConfig};

fn main() {
    // A 4-node cluster of 2-way SMPs (the paper's nodes), Myrinet-class
    // SAN, WindowsNT memory model.
    let cluster = Cluster::build(ClusterConfig::small(4, 2));
    let rt = CablesRt::new(Arc::clone(&cluster), CablesConfig::paper());
    let rt2 = Arc::clone(&rt);

    let end = rt
        .run(move |pth| {
            println!("pthread_start done on {:?}", pth.node());

            // Dynamic global memory: allocate mid-execution, from anywhere.
            let counter = pth.malloc(8);
            pth.write::<u64>(counter, 0);
            let m = pth.rt().mutex_new();
            let done_cv = pth.rt().cond_new();
            let done_flag = pth.malloc(8);
            pth.write::<u64>(done_flag, 0);

            // Create more threads than the master node can hold: CableS
            // attaches new nodes on the fly (expensive — seconds — exactly
            // like the paper's Table 4 says).
            let workers: Vec<_> = (0..6)
                .map(|i| {
                    pth.create(move |p| {
                        p.compute(50_000 * (i + 1));
                        p.mutex_lock(m);
                        let v = p.read::<u64>(counter);
                        p.write::<u64>(counter, v + i + 1);
                        p.mutex_unlock(m);
                        p.node().0 as u64
                    })
                })
                .collect();

            // A watcher thread waits on a condition variable.
            let watcher = pth.create(move |p| {
                let wm = p.rt().mutex_new();
                p.mutex_lock(wm);
                while p.read::<u64>(done_flag) == 0 {
                    if p.cond_wait(done_cv, wm).is_err() {
                        return 0;
                    }
                }
                p.mutex_unlock(wm);
                p.read::<u64>(counter)
            });

            let mut nodes_used = Vec::new();
            for w in workers {
                nodes_used.push(pth.join(w));
            }
            pth.mutex_lock(m);
            let total = pth.read::<u64>(counter);
            pth.mutex_unlock(m);
            println!("workers ran on nodes {nodes_used:?}; counter = {total}");
            assert_eq!(total, 1 + 2 + 3 + 4 + 5 + 6);

            pth.write::<u64>(done_flag, 1);
            pth.cond_signal(done_cv);
            let seen = pth.join(watcher);
            println!("watcher observed counter = {seen}");
            0
        })
        .expect("simulation");

    let stats = rt2.stats();
    println!(
        "virtual time {end}; nodes attached {}; creates {} local / {} remote",
        stats.nodes_attached,
        stats.local_creates,
        stats.remote_creates
    );
    let placement = rt2.svm().placement_report();
    println!(
        "pages touched {}, misplaced {} ({:.1}%) — the WindowsNT 64KB effect",
        placement.touched_pages,
        placement.misplaced_pages,
        placement.misplaced_pct()
    );
}
